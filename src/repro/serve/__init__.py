"""Layer 6: the streaming decision service.

Online sessions (:mod:`repro.serve.session`) consume telemetry chunks
through the incremental physics stream, a hub
(:mod:`repro.serve.hub`) micro-batches decision epochs across sessions
through one stacked kernel pass, and an asyncio front-end
(:mod:`repro.serve.server`) exposes it all over TCP JSON lines.  The
load-bearing guarantee: online decisions are bit-identical to the
offline batch engine, at any chunk size.
"""

from repro.serve.hub import HubStats, SessionHub
from repro.serve.session import (
    DecisionRecord,
    StreamSession,
    offline_decision_log,
    write_decision_log,
)
from repro.serve.server import (
    StreamServer,
    run_demo,
    run_offline_reference,
    serve_forever,
)

__all__ = [
    "DecisionRecord",
    "HubStats",
    "SessionHub",
    "StreamServer",
    "StreamSession",
    "offline_decision_log",
    "run_demo",
    "run_offline_reference",
    "serve_forever",
    "write_decision_log",
]
