"""Per-vehicle streaming sessions — layer 6's unit of state.

A :class:`StreamSession` owns everything one telemetry stream needs to
be decided online exactly as the offline batch engine would decide it:

* a :class:`~repro.sim.physics.TracePhysicsStream` consuming boundary-
  condition chunks (bit-identical per row to the one-shot precompute),
* the session's seeded temperature scanner — successive chunked
  :meth:`~repro.vehicle.sensors.ModuleTemperatureScanner.scan_batch`
  calls on one persisted generator draw exactly the doubles a single
  whole-trace batch draw would (C-order fill of the bit stream, pinned
  in the stream parity suite),
* either an inline policy object (EHTR / Baseline / scalar-kernel
  INOR — stateful, driven sample by sample) or a queue of *pending*
  decision work that the :class:`~repro.serve.hub.SessionHub` resolves
  in stacked kernel passes across every concurrent session: for
  batched-kernel INOR, the replica of
  :class:`~repro.core.controller.PeriodicPolicy`'s period gating plus
  pending EMF rows; for batched-kernel DNOR under nominal compute
  accounting, the :meth:`~repro.core.controller.DNORPolicy.observe` /
  :meth:`~repro.core.controller.DNORPolicy.commit` split plus pending
  *epochs* that the hub plans through
  :func:`~repro.core.dnor.dnor_stack`.

The emitted decision log — one :class:`DecisionRecord` per applied
configuration — is byte-identical to :func:`offline_decision_log` run
over the complete trace (pinned in ``tests/test_serve.py`` and diffed
byte-clean in CI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.inor import parse_inor_kernel
from repro.errors import ConfigurationError, SimulationError
from repro.sim.physics import TracePhysics, TracePhysicsStream
from repro.sim.scenario import Scenario

__all__ = [
    "DecisionRecord",
    "StreamSession",
    "offline_decision_log",
    "write_decision_log",
]


@dataclass(frozen=True)
class DecisionRecord:
    """One applied configuration in a session's decision log.

    Attributes
    ----------
    index:
        Trace sample index the decision fired on.
    time_s:
        Trace time of that sample.
    starts:
        Group-start modules of the applied configuration.
    n_groups:
        Number of series groups (= ``len(starts)``).
    """

    index: int
    time_s: float
    starts: Tuple[int, ...]
    n_groups: int

    def to_json_line(self) -> str:
        """Canonical one-line JSON form (byte-stable for diffing).

        Floats serialise as Python's shortest round-trip repr, so equal
        doubles always yield equal bytes.
        """
        return json.dumps(
            {
                "i": self.index,
                "t": self.time_s,
                "n": self.n_groups,
                "starts": list(self.starts),
            },
            separators=(",", ":"),
            allow_nan=False,
        )


def write_decision_log(records: Sequence[DecisionRecord], path) -> None:
    """Write a decision log as canonical JSON lines."""
    with open(path, "w", encoding="ascii") as handle:
        for record in records:
            handle.write(record.to_json_line() + "\n")


def _make_policy(scenario: Scenario, policy: str, dnor_refit: str):
    if policy == "INOR":
        return scenario.make_inor_policy()
    if policy == "EHTR":
        return scenario.make_ehtr_policy()
    if policy == "DNOR":
        return scenario.make_dnor_policy(refit=dnor_refit)
    if policy == "Baseline":
        return scenario.make_baseline_policy()
    raise ConfigurationError(
        f"unknown policy {policy!r} (expected INOR/EHTR/DNOR/Baseline)"
    )


@dataclass(frozen=True)
class PendingDecision:
    """A fired INOR sample awaiting the hub's stacked kernel pass."""

    index: int
    time_s: float
    emf_row: np.ndarray


@dataclass(frozen=True)
class PendingEpoch:
    """A due DNOR epoch awaiting the hub's stacked planning pass.

    Exactly the arguments :meth:`DNORPolicy.decide` would hand its
    planner, captured at the epoch boundary — the history snapshot and
    incremental-refit row count are frozen here, so planning later (in
    the hub's round) sees the same matrices the inline path would.
    """

    index: int
    time_s: float
    ambient_c: float
    history: np.ndarray
    new_rows: int


class StreamSession:
    """One vehicle's telemetry stream under one reconfiguration policy.

    Parameters
    ----------
    scenario:
        The session's system description (module, chain, thermal
        boundary,
        scanner seed, control knobs).  Only the boundary-condition
        columns arrive at runtime, via :meth:`feed`.
    policy:
        Scheme name — ``"INOR"`` (micro-batched through the hub when
        the scenario's kernel is batched), ``"DNOR"``, ``"EHTR"`` or
        ``"Baseline"`` (driven inline).
    session_id:
        Stable identifier used in logs and server events.
    dnor_refit:
        Refit strategy for DNOR sessions (``"full"`` or
        ``"incremental"``).
    """

    def __init__(
        self,
        scenario: Scenario,
        policy: str = "INOR",
        session_id: str = "session",
        dnor_refit: str = "full",
    ) -> None:
        self.session_id = str(session_id)
        self._scenario = scenario
        self._policy_name = str(policy)
        self._stream = TracePhysicsStream(
            scenario.boundary, scenario.module, scenario.n_modules
        )
        self._scanner = scenario.make_scanner()
        self._scanner.reset()
        kernel_mode, self._backend = parse_inor_kernel(scenario.inor_kernel)
        self._micro_batched = policy == "INOR" and kernel_mode == "batched"
        # DNOR micro-batching needs the stacked epoch kernel's fused
        # contract: the batched kernel and deterministic (nominal)
        # compute accounting.  Measured-compute sessions stay inline.
        self._dnor_batched = (
            policy == "DNOR"
            and kernel_mode == "batched"
            and scenario.nominal_compute_s is not None
        )
        if self._micro_batched:
            self._policy = None
            self._charger = scenario.make_charger(with_battery=False)
            module = scenario.module
            self._emf_coef = module.emf_coefficient()
            self._resistance = np.full(
                int(scenario.n_modules), module.internal_resistance()
            )
            self._next_run_s = 0.0
        else:
            self._policy = _make_policy(scenario, policy, dnor_refit)
            self._policy.reset()
        self._sample_index = 0
        self._records: List[DecisionRecord] = []
        self._pending: List[PendingDecision] = []
        self._pending_epochs: List[PendingEpoch] = []

    # ------------------------------------------------------------------
    @property
    def scenario(self) -> Scenario:
        """The session's system description."""
        return self._scenario

    @property
    def policy_name(self) -> str:
        """Scheme name driving this session."""
        return self._policy_name

    @property
    def micro_batched(self) -> bool:
        """Whether decisions go through the hub's stacked kernel pass."""
        return self._micro_batched or self._dnor_batched

    @property
    def n_samples_seen(self) -> int:
        """Telemetry samples consumed so far."""
        return self._sample_index

    @property
    def records(self) -> Tuple[DecisionRecord, ...]:
        """All decisions emitted so far, in sample order."""
        return tuple(self._records)

    @property
    def pending(self) -> Tuple[PendingDecision, ...]:
        """Fired INOR samples awaiting the next hub epoch."""
        return tuple(self._pending)

    @property
    def pending_epochs(self) -> Tuple[PendingEpoch, ...]:
        """Due DNOR epochs awaiting the hub's stacked planning rounds."""
        return tuple(self._pending_epochs)

    @property
    def dnor_planner(self):
        """The session's :class:`~repro.core.dnor.DNORPlanner` (the
        per-lane state the hub hands to ``dnor_stack``)."""
        return self._policy.planner

    @property
    def dnor_current(self):
        """The DNOR policy's durable configuration (``None`` before
        the first adoption)."""
        return self._policy.current_config

    # ------------------------------------------------------------------
    def feed(
        self,
        time_s: np.ndarray,
        coolant_inlet_c: np.ndarray,
        coolant_flow_kg_s: np.ndarray,
        ambient_c: np.ndarray,
        air_flow_kg_s: np.ndarray,
        coolant_inlet_sensed_c: Optional[np.ndarray] = None,
        coolant_flow_sensed_kg_s: Optional[np.ndarray] = None,
    ) -> List[DecisionRecord]:
        """Consume one telemetry chunk (matching 1-D columns).

        Inline-policy sessions return the decisions fired inside the
        chunk immediately; micro-batched sessions queue pending work —
        INOR decision rows (:attr:`pending`) or DNOR epochs
        (:attr:`pending_epochs`) — and return ``[]``; their records
        arrive when the hub runs its next stacked epoch.
        """
        times = np.asarray(time_s, dtype=float)
        ambient = np.asarray(ambient_c, dtype=float)
        if times.ndim != 1 or times.size < 1:
            raise SimulationError(
                f"chunk time_s must be non-empty 1-D, got {times.shape}"
            )
        state = self._stream.extend(
            coolant_inlet_c,
            coolant_flow_kg_s,
            ambient,
            air_flow_kg_s,
            coolant_inlet_sensed_c,
            coolant_flow_sensed_kg_s,
        )
        if state.n_samples != times.size:
            raise SimulationError(
                f"chunk columns of {state.n_samples} samples do not match "
                f"time_s of {times.size}"
            )
        scanned = self._scanner.scan_batch(state.sensed_temps_c)
        emitted: List[DecisionRecord] = []
        for j in range(times.size):
            index = self._sample_index + j
            t = float(times[j])
            amb = float(ambient[j])
            if self._micro_batched:
                # PeriodicPolicy's gating arithmetic, verbatim.
                if t + 1.0e-9 < self._next_run_s:
                    continue
                self._next_run_s = t + float(
                    self._scenario.control_period_s
                )
                self._pending.append(
                    PendingDecision(
                        index=index,
                        time_s=t,
                        emf_row=self._emf_coef * (scanned[j] - amb),
                    )
                )
            elif self._dnor_batched:
                # DNORPolicy's own epoch gating; the history snapshot
                # and refit row count are frozen at the boundary, so
                # the hub's later stacked plan sees exactly what the
                # inline decide() would have seen.
                due = self._policy.observe(t, scanned[j])
                if due is not None:
                    history, n_new = due
                    self._pending_epochs.append(
                        PendingEpoch(
                            index=index,
                            time_s=t,
                            ambient_c=amb,
                            history=history,
                            new_rows=n_new,
                        )
                    )
            else:
                decision = self._policy.decide(t, scanned[j], amb)
                if decision is not None:
                    record = DecisionRecord(
                        index=index,
                        time_s=t,
                        starts=tuple(int(s) for s in decision.starts),
                        n_groups=len(decision.starts),
                    )
                    self._records.append(record)
                    emitted.append(record)
        self._sample_index += times.size
        return emitted

    def feed_trace(self, trace, lo: int, hi: int) -> List[DecisionRecord]:
        """Convenience: :meth:`feed` from trace sample slice ``[lo, hi)``."""
        return self.feed(
            trace.time_s[lo:hi],
            trace.coolant_inlet_c[lo:hi],
            trace.coolant_flow_kg_s[lo:hi],
            trace.ambient_c[lo:hi],
            trace.air_flow_kg_s[lo:hi],
            trace.coolant_inlet_sensed_c[lo:hi],
            trace.coolant_flow_sensed_kg_s[lo:hi],
        )

    def resolve_pending(
        self, starts_per_row: Sequence[Tuple[int, ...]]
    ) -> List[DecisionRecord]:
        """Apply stacked-kernel winners to the queued pending rows.

        Called by the hub with one starts tuple per pending row, in
        queue order.  Returns (and stores) the new records.
        """
        if len(starts_per_row) != len(self._pending):
            raise SimulationError(
                f"{len(starts_per_row)} winner rows for "
                f"{len(self._pending)} pending decisions"
            )
        emitted: List[DecisionRecord] = []
        for pending, starts in zip(self._pending, starts_per_row):
            record = DecisionRecord(
                index=pending.index,
                time_s=pending.time_s,
                starts=tuple(int(s) for s in starts),
                n_groups=len(starts),
            )
            self._records.append(record)
            emitted.append(record)
        self._pending = []
        return emitted

    def resolve_next_epoch(self, decision) -> Optional[DecisionRecord]:
        """Commit the stacked planner's decision for the head epoch.

        Called by the hub once per planning *round* with this session's
        lane decision from :func:`~repro.core.dnor.dnor_stack`.  Pops
        the oldest pending epoch, feeds the decision through
        :meth:`~repro.core.controller.DNORPolicy.commit`, and returns
        the new record on a switch (``None`` on keep).
        """
        if not self._pending_epochs:
            raise SimulationError(
                f"session {self.session_id!r} has no pending epoch to resolve"
            )
        pending = self._pending_epochs.pop(0)
        config = self._policy.commit(pending.time_s, decision)
        if config is None:
            return None
        record = DecisionRecord(
            index=pending.index,
            time_s=pending.time_s,
            starts=tuple(int(s) for s in config.starts),
            n_groups=len(config.starts),
        )
        self._records.append(record)
        return record


def offline_decision_log(
    scenario: Scenario,
    policy: str = "INOR",
    dnor_refit: str = "full",
) -> List[DecisionRecord]:
    """The offline reference: decide a complete trace in one batch pass.

    Runs exactly the batch engine's decision loop — one whole-trace
    :meth:`TracePhysics.compute`, one whole-trace scanner draw, then the
    per-sample policy loop — and returns one record per applied
    configuration.  The online session log must match this byte for
    byte.
    """
    physics = TracePhysics.compute(
        scenario.trace, scenario.boundary, scenario.module, scenario.n_modules
    )
    scanner = scenario.make_scanner()
    scanner.reset()
    scanned = scanner.scan_batch(physics.sensed_temps_c)
    policy_obj = _make_policy(scenario, policy, dnor_refit)
    policy_obj.reset()
    trace = scenario.trace
    records: List[DecisionRecord] = []
    for i in range(trace.n_samples):
        t = float(trace.time_s[i])
        decision = policy_obj.decide(t, scanned[i], float(trace.ambient_c[i]))
        if decision is not None:
            records.append(
                DecisionRecord(
                    index=i,
                    time_s=t,
                    starts=tuple(int(s) for s in decision.starts),
                    n_groups=len(decision.starts),
                )
            )
    return records
