"""Cross-session decision micro-batching — layer 6's stacked epochs.

The :class:`SessionHub` holds every live :class:`~repro.serve.session.
StreamSession` and, once per decision epoch, drains their pending INOR
rows through :func:`repro.core.inor.inor_stack`: all fired samples from
all compatible sessions become one ``(rows, N)`` EMF matrix and one
stacked kernel pass, so K concurrent vehicles cost roughly one INOR
evaluation per epoch instead of K.  ``inor_stack`` is pinned
bit-identical per row to the scalar :func:`~repro.core.inor.inor` call
a standalone :class:`~repro.core.controller.PeriodicPolicy` would make,
which is what keeps the online decision logs byte-equal to the offline
batch reference.

Batched-kernel DNOR sessions under nominal compute accounting
micro-batch the same way, one level up: their due *epochs* queue on the
session (:attr:`StreamSession.pending_epochs`) and the hub plans them
in rounds through :func:`repro.core.dnor.dnor_stack` — the r-th pending
epoch of every compatible session becomes one stacked Algorithm 2 pass.
Rounds, not one flat batch, because epoch r+1 of a session depends on
epoch r's committed configuration and predictor-stream refit;
``dnor_stack`` is pinned bit-identical per lane to
:meth:`~repro.core.dnor.DNORPlanner.plan`, which keeps the stacked
online log byte-equal to the inline one.

Sessions stack only when their decision inputs are interchangeable —
same module electrical identity, array size, converter curve and
kernel backend (plus, for DNOR, the same horizon geometry).
Incompatible sessions still work; they just land in separate groups
(each its own stacked pass).  Inline-policy sessions (EHTR, Baseline,
scalar-kernel INOR, measured-compute DNOR) never queue pending work
and pass through the hub untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dnor import dnor_stack
from repro.core.inor import inor_stack, parse_inor_kernel
from repro.errors import ConfigurationError
from repro.serve.session import DecisionRecord, StreamSession

__all__ = ["HubStats", "SessionHub"]


@dataclass
class HubStats:
    """Running counters for the hub's stacked epochs."""

    epochs: int = 0
    stacked_passes: int = 0
    rows_decided: int = 0
    max_rows_per_pass: int = 0
    max_sessions_per_pass: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for logs and benchmark artifacts."""
        return {
            "epochs": self.epochs,
            "stacked_passes": self.stacked_passes,
            "rows_decided": self.rows_decided,
            "max_rows_per_pass": self.max_rows_per_pass,
            "max_sessions_per_pass": self.max_sessions_per_pass,
        }


def _stack_key(session: StreamSession) -> Tuple:
    """Hashable stacking identity: one key, one ``inor_stack`` stream."""
    scenario = session.scenario
    _, backend = parse_inor_kernel(scenario.inor_kernel)
    return (
        int(scenario.n_modules),
        scenario.module,
        scenario.make_charger(with_battery=False).converter,
        backend,
    )


def _dnor_stack_key(session: StreamSession) -> Tuple:
    """Stacking identity for DNOR epoch rounds: the ``dnor_stack``
    homogeneity contract — shared module electricals, converter, kernel
    spec and horizon geometry."""
    scenario = session.scenario
    return (
        int(scenario.n_modules),
        scenario.module,
        scenario.make_charger(with_battery=False).converter,
        scenario.inor_kernel,
        float(scenario.tp_seconds),
        float(scenario.trace.dt_s),
    )


class SessionHub:
    """Registry of live sessions plus the stacked decision epoch."""

    def __init__(self) -> None:
        self._sessions: Dict[str, StreamSession] = {}
        self._stats = HubStats()

    # ------------------------------------------------------------------
    @property
    def stats(self) -> HubStats:
        """Stacking counters since construction."""
        return self._stats

    @property
    def sessions(self) -> Tuple[StreamSession, ...]:
        """Live sessions in registration order."""
        return tuple(self._sessions.values())

    def add(self, session: StreamSession) -> StreamSession:
        """Register a session; ids must be unique among live sessions."""
        if session.session_id in self._sessions:
            raise ConfigurationError(
                f"duplicate session id {session.session_id!r}"
            )
        self._sessions[session.session_id] = session
        return session

    def get(self, session_id: str) -> StreamSession:
        """Look up a live session by id."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown session id {session_id!r}"
            ) from None

    def remove(self, session_id: str) -> StreamSession:
        """Deregister (and return) a session."""
        return self._sessions.pop(self.get(session_id).session_id)

    # ------------------------------------------------------------------
    def run_epoch(self) -> Dict[str, List[DecisionRecord]]:
        """Resolve every pending row and epoch across all sessions.

        Groups sessions by stacking identity, runs one ``inor_stack``
        pass per INOR group over the concatenated pending EMF rows, and
        dispatches each row's winning configuration back to its session
        in queue order.  Pending DNOR epochs resolve in *rounds* per
        group — see :meth:`_run_dnor_rounds`.  Returns the newly
        emitted records keyed by session id (sessions with nothing
        pending, or whose epochs all kept the current configuration,
        are omitted).
        """
        groups: Dict[Tuple, List[StreamSession]] = {}
        dnor_groups: Dict[Tuple, List[StreamSession]] = {}
        for session in self._sessions.values():
            if session.pending:
                groups.setdefault(_stack_key(session), []).append(session)
            elif session.pending_epochs:
                dnor_groups.setdefault(
                    _dnor_stack_key(session), []
                ).append(session)
        self._stats.epochs += 1
        emitted: Dict[str, List[DecisionRecord]] = {}
        for members in dnor_groups.values():
            for sid, new_records in self._run_dnor_rounds(members).items():
                emitted.setdefault(sid, []).extend(new_records)
        for key, members in groups.items():
            n_modules, module, _converter, backend = key
            counts = [len(s.pending) for s in members]
            emf_rows = np.vstack(
                [p.emf_row for s in members for p in s.pending]
            )
            # Same Thevenin arithmetic as PeriodicPolicy's scalar path:
            # the module model's nominal chain resistance.
            resistance = np.full(int(n_modules), module.internal_resistance())
            charger = members[0].scenario.make_charger(with_battery=False)
            results = inor_stack(
                emf_rows, resistance, charger=charger, backend=backend
            )
            self._stats.stacked_passes += 1
            self._stats.rows_decided += emf_rows.shape[0]
            self._stats.max_rows_per_pass = max(
                self._stats.max_rows_per_pass, emf_rows.shape[0]
            )
            self._stats.max_sessions_per_pass = max(
                self._stats.max_sessions_per_pass, len(members)
            )
            offset = 0
            for session, count in zip(members, counts):
                starts = [
                    tuple(int(v) for v in results[offset + j].config.starts)
                    for j in range(count)
                ]
                offset += count
                emitted[session.session_id] = session.resolve_pending(starts)
        return emitted

    def _run_dnor_rounds(
        self, members: List[StreamSession]
    ) -> Dict[str, List[DecisionRecord]]:
        """Drain the members' pending DNOR epochs in stacked rounds.

        Round ``r`` plans the r-th pending epoch of every member that
        still has one through a single :func:`dnor_stack` call and
        commits each lane's decision back to its session.  Sequencing
        by rounds is mandatory: epoch ``r+1`` depends on epoch ``r``'s
        committed configuration and on the predictor-stream mutations
        its plan performs.  ``dnor_stack`` ignores ``time_s`` in the
        decision math, so lanes whose epochs fired at different stream
        times stack safely.
        """
        emitted: Dict[str, List[DecisionRecord]] = {}
        while True:
            live = [s for s in members if s.pending_epochs]
            if not live:
                return emitted
            heads = [s.pending_epochs[0] for s in live]
            decisions = dnor_stack(
                [s.dnor_planner for s in live],
                [p.history for p in heads],
                np.array([p.ambient_c for p in heads]),
                [s.dnor_current for s in live],
                time_s=heads[0].time_s,
                new_rows=[p.new_rows for p in heads],
            )
            self._stats.stacked_passes += 1
            self._stats.rows_decided += len(live)
            self._stats.max_rows_per_pass = max(
                self._stats.max_rows_per_pass, len(live)
            )
            self._stats.max_sessions_per_pass = max(
                self._stats.max_sessions_per_pass, len(live)
            )
            for session, decision in zip(live, decisions):
                record = session.resolve_next_epoch(decision)
                if record is not None:
                    emitted.setdefault(session.session_id, []).append(record)

    def drain(self, session_id: str) -> List[DecisionRecord]:
        """Resolve one session's pendings (used when a session closes).

        Still goes through the stacked kernel (a single-session pass) so
        the decision arithmetic is identical to a full epoch.
        """
        session = self.get(session_id)
        if session.pending_epochs:
            rounds = self._run_dnor_rounds([session])
            return rounds.get(session.session_id, [])
        if not session.pending:
            return []
        key = _stack_key(session)
        n_modules, module, _converter, backend = key
        emf_rows = np.vstack([p.emf_row for p in session.pending])
        resistance = np.full(int(n_modules), module.internal_resistance())
        charger = session.scenario.make_charger(with_battery=False)
        results = inor_stack(
            emf_rows, resistance, charger=charger, backend=backend
        )
        self._stats.stacked_passes += 1
        self._stats.rows_decided += emf_rows.shape[0]
        starts = [
            tuple(int(v) for v in r.config.starts) for r in results
        ]
        return session.resolve_pending(starts)
