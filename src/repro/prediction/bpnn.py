"""Back-propagation neural network predictor.

A single-hidden-layer perceptron (tanh activation, linear output)
trained with mini-batch stochastic gradient descent plus momentum —
the classic BPNN of Bishop [14] that the paper benchmarks against MLR.
Inputs and targets are standardised; initialisation and batch order
are seeded, so results are reproducible.

Implemented entirely on numpy — no autograd framework.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import LagSeriesPredictor
from repro.prediction.features import Standardizer, pooled_lag_matrix


class BPNNPredictor(LagSeriesPredictor):
    """One-hidden-layer tanh network forecaster.

    Parameters
    ----------
    lags, train_window:
        See :class:`repro.prediction.base.LagSeriesPredictor`.
    hidden_units:
        Width of the hidden layer.
    epochs:
        Full passes over the training window per :meth:`fit`.
    learning_rate, momentum:
        SGD hyper-parameters.
    batch_size:
        Mini-batch size.
    seed:
        Seed for weight init and batch shuffling.
    """

    def __init__(
        self,
        lags: int = 4,
        train_window: Optional[int] = 240,
        hidden_units: int = 8,
        epochs: int = 60,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(lags=lags, train_window=train_window)
        if hidden_units < 1:
            raise PredictionError(f"hidden_units must be >= 1, got {hidden_units}")
        if epochs < 1:
            raise PredictionError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0.0:
            raise PredictionError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise PredictionError(f"momentum must lie in [0, 1), got {momentum}")
        if batch_size < 1:
            raise PredictionError(f"batch_size must be >= 1, got {batch_size}")
        self._hidden_units = int(hidden_units)
        self._epochs = int(epochs)
        self._learning_rate = float(learning_rate)
        self._momentum = float(momentum)
        self._batch_size = int(batch_size)
        self._seed = int(seed)
        self._w1: Optional[np.ndarray] = None
        self._b1: Optional[np.ndarray] = None
        self._w2: Optional[np.ndarray] = None
        self._b2 = 0.0
        self._x_scaler = Standardizer()
        self._y_scaler = Standardizer()

    @property
    def name(self) -> str:
        """Display name."""
        return "BPNN"

    @property
    def hidden_units(self) -> int:
        """Hidden layer width."""
        return self._hidden_units

    def _fit_impl(self, history: np.ndarray) -> None:
        x, y = pooled_lag_matrix(history, self._lags)
        self._x_scaler.fit(x)
        self._y_scaler.fit(y[:, None])
        xs = self._x_scaler.transform(x)
        ys = self._y_scaler.transform(y[:, None]).ravel()

        rng = np.random.default_rng(self._seed)
        scale = 1.0 / np.sqrt(self._lags)
        w1 = rng.normal(0.0, scale, size=(self._lags, self._hidden_units))
        b1 = np.zeros(self._hidden_units)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(self._hidden_units), self._hidden_units)
        b2 = 0.0
        v_w1 = np.zeros_like(w1)
        v_b1 = np.zeros_like(b1)
        v_w2 = np.zeros_like(w2)
        v_b2 = 0.0

        n = xs.shape[0]
        for _ in range(self._epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self._batch_size):
                batch = order[lo : lo + self._batch_size]
                xb, yb = xs[batch], ys[batch]
                # Forward.
                hidden = np.tanh(xb @ w1 + b1)
                pred = hidden @ w2 + b2
                err = pred - yb
                m = xb.shape[0]
                # Backward (mean-squared-error gradients).
                grad_w2 = hidden.T @ err / m
                grad_b2 = float(err.mean())
                hidden_err = (err[:, None] * w2[None, :]) * (1.0 - hidden * hidden)
                grad_w1 = xb.T @ hidden_err / m
                grad_b1 = hidden_err.mean(axis=0)
                # Momentum update.
                v_w2 = self._momentum * v_w2 - self._learning_rate * grad_w2
                v_b2 = self._momentum * v_b2 - self._learning_rate * grad_b2
                v_w1 = self._momentum * v_w1 - self._learning_rate * grad_w1
                v_b1 = self._momentum * v_b1 - self._learning_rate * grad_b1
                w2 = w2 + v_w2
                b2 = b2 + v_b2
                w1 = w1 + v_w1
                b1 = b1 + v_b1

        self._w1, self._b1, self._w2, self._b2 = w1, b1, w2, float(b2)

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        assert self._w1 is not None and self._w2 is not None
        x = self._x_scaler.transform(window.T)  # (N, lags)
        hidden = np.tanh(x @ self._w1 + self._b1)
        pred = hidden @ self._w2 + self._b2
        return self._y_scaler.inverse(pred[:, None]).ravel()
