"""Temperature-distribution prediction (Section IV of the paper).

The paper forecasts the per-module temperature distribution directly
from its own past values and compares three predictors — multiple
linear regression (MLR), a back-propagation neural network (BPNN) and
support vector regression (SVR) — selecting MLR for its accuracy and
O(N) speed.  All three are implemented here from scratch on numpy:

* :mod:`repro.prediction.base` — the common lag-series predictor
  interface.
* :mod:`repro.prediction.features` — lag-matrix construction and
  standardisation.
* :mod:`repro.prediction.mlr` — pooled ordinary-least-squares MLR.
* :mod:`repro.prediction.bpnn` — one-hidden-layer network trained with
  momentum SGD.
* :mod:`repro.prediction.svr` — epsilon-insensitive linear SVR trained
  in the primal.
* :mod:`repro.prediction.metrics` — MAPE (paper Eq. 3) and friends.
* :mod:`repro.prediction.evaluate` — walk-forward evaluation producing
  the Fig. 5 error series.
"""

from repro.prediction.base import LagSeriesPredictor
from repro.prediction.baselines import DriftPredictor, PersistencePredictor
from repro.prediction.bpnn import BPNNPredictor
from repro.prediction.evaluate import PredictionEvaluation, walk_forward_evaluation
from repro.prediction.features import Standardizer, lag_matrix, pooled_lag_matrix
from repro.prediction.metrics import mae, mape, max_ape, rmse
from repro.prediction.mlr import MLRPredictor
from repro.prediction.selection import SelectionReport, select_predictor
from repro.prediction.svr import SVRPredictor

__all__ = [
    "BPNNPredictor",
    "DriftPredictor",
    "LagSeriesPredictor",
    "MLRPredictor",
    "PersistencePredictor",
    "PredictionEvaluation",
    "SVRPredictor",
    "SelectionReport",
    "Standardizer",
    "lag_matrix",
    "mae",
    "mape",
    "max_ape",
    "pooled_lag_matrix",
    "rmse",
    "select_predictor",
    "walk_forward_evaluation",
]
