"""Walk-forward prediction evaluation (the paper's Fig. 5 procedure).

At every evaluation instant the predictor is (re)fitted on the history
available so far, asked for an ``horizon``-step forecast of the whole
module-temperature distribution, and scored with MAPE (Eq. 3) against
what actually happened.  The per-instant error series is exactly what
the paper plots in Fig. 5; the summary statistics feed Table-like
comparisons and the DNOR design choice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import LagSeriesPredictor
from repro.prediction.metrics import mape


@dataclass(frozen=True)
class PredictionEvaluation:
    """Result of a walk-forward run.

    Attributes
    ----------
    predictor_name:
        Display name of the evaluated predictor.
    horizon_steps:
        Forecast length per evaluation instant.
    eval_times_idx:
        History row index of each evaluation instant (forecast origin).
    mape_series_pct:
        MAPE of each instant's forecast block, percent.
    mean_mape_pct, max_mape_pct:
        Aggregates over the series.
    mean_fit_seconds, mean_forecast_seconds:
        Average wall-clock cost of one fit / one forecast call.
    """

    predictor_name: str
    horizon_steps: int
    eval_times_idx: np.ndarray
    mape_series_pct: np.ndarray
    mean_mape_pct: float
    max_mape_pct: float
    mean_fit_seconds: float
    mean_forecast_seconds: float


def walk_forward_evaluation(
    predictor: LagSeriesPredictor,
    history: np.ndarray,
    horizon_steps: int,
    warmup_rows: int = 80,
    stride: int = 1,
    refit_every: int = 1,
) -> PredictionEvaluation:
    """Evaluate a predictor over a ``(T, N)`` temperature history.

    Parameters
    ----------
    predictor:
        The forecaster under test (mutated: refitted repeatedly).
    history:
        Full module-temperature matrix, one row per sample instant.
    horizon_steps:
        Forecast length scored at each instant (2 rows = 1 second at
        the paper's 0.5 s sampling).
    warmup_rows:
        Rows reserved before the first evaluation.
    stride:
        Evaluate every ``stride`` rows.
    refit_every:
        Refit cadence in evaluation instants; 1 refits every time (the
        paper's online setting), larger values amortise slow trainers.

    Raises
    ------
    PredictionError
        If the history cannot accommodate warmup + horizon.
    """
    arr = np.asarray(history, dtype=float)
    if arr.ndim == 1:
        arr = arr[:, None]
    if warmup_rows < predictor.lags + 2:
        raise PredictionError(
            f"warmup_rows must exceed lags + 1 = {predictor.lags + 1}"
        )
    if stride < 1 or refit_every < 1:
        raise PredictionError("stride and refit_every must be >= 1")
    last_origin = arr.shape[0] - horizon_steps
    if last_origin <= warmup_rows:
        raise PredictionError(
            f"history of {arr.shape[0]} rows too short for warmup {warmup_rows} "
            f"+ horizon {horizon_steps}"
        )

    origins: List[int] = list(range(warmup_rows, last_origin, stride))
    errors = np.empty(len(origins))
    fit_times: List[float] = []
    forecast_times: List[float] = []

    for k, origin in enumerate(origins):
        past = arr[:origin]
        if k % refit_every == 0:
            t0 = time.perf_counter()
            predictor.fit(past)
            fit_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        forecast = predictor.forecast(past, horizon_steps)
        forecast_times.append(time.perf_counter() - t0)
        actual = arr[origin : origin + horizon_steps]
        errors[k] = mape(actual, forecast)

    return PredictionEvaluation(
        predictor_name=predictor.name,
        horizon_steps=horizon_steps,
        eval_times_idx=np.asarray(origins, dtype=np.int64),
        mape_series_pct=errors,
        mean_mape_pct=float(errors.mean()),
        max_mape_pct=float(errors.max()),
        mean_fit_seconds=float(np.mean(fit_times)) if fit_times else 0.0,
        mean_forecast_seconds=float(np.mean(forecast_times)),
    )
