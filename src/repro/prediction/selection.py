"""Automated predictor selection (the paper's Section IV procedure).

The paper "tests three prediction methods and implements MLR with the
highest accuracy and fastest speed".  :func:`select_predictor` encodes
that procedure: walk-forward-evaluate a set of candidates on a
validation slice of the temperature history and pick the winner by
accuracy, breaking near-ties (within ``runtime_tolerance`` of the best
MAPE) in favour of the cheaper model — exactly the judgement call the
paper makes when MLR and a heavier model score similarly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import LagSeriesPredictor
from repro.prediction.evaluate import PredictionEvaluation, walk_forward_evaluation


@dataclass(frozen=True)
class SelectionReport:
    """Outcome of a predictor-selection run.

    Attributes
    ----------
    winner:
        The selected predictor (already fitted on the full history).
    evaluations:
        Every candidate's walk-forward evaluation, selection order.
    reason:
        One-line human-readable justification.
    """

    winner: LagSeriesPredictor
    evaluations: Tuple[PredictionEvaluation, ...]
    reason: str


def select_predictor(
    candidates: Sequence[LagSeriesPredictor],
    history: np.ndarray,
    horizon_steps: int,
    warmup_rows: int = 80,
    stride: int = 4,
    refit_every: int = 10,
    accuracy_tolerance: float = 1.25,
) -> SelectionReport:
    """Pick the best predictor for a temperature history.

    Parameters
    ----------
    candidates:
        Predictors to compare (mutated: each is refitted repeatedly).
    history:
        ``(T, N)`` validation history.
    horizon_steps:
        Forecast length to score (the DNOR horizon).
    warmup_rows, stride, refit_every:
        Walk-forward evaluation knobs (see
        :func:`repro.prediction.evaluate.walk_forward_evaluation`).
    accuracy_tolerance:
        Candidates within this multiplicative factor of the best mean
        MAPE count as ties; the cheapest (fit+forecast time) tie wins.

    Raises
    ------
    PredictionError
        If no candidates are supplied.
    """
    if len(candidates) == 0:
        raise PredictionError("select_predictor needs at least one candidate")
    if accuracy_tolerance < 1.0:
        raise PredictionError(
            f"accuracy_tolerance must be >= 1, got {accuracy_tolerance}"
        )

    evaluations: List[PredictionEvaluation] = []
    for predictor in candidates:
        evaluations.append(
            walk_forward_evaluation(
                predictor,
                history,
                horizon_steps=horizon_steps,
                warmup_rows=warmup_rows,
                stride=stride,
                refit_every=refit_every,
            )
        )

    best_mape = min(e.mean_mape_pct for e in evaluations)
    tied = [
        (predictor, evaluation)
        for predictor, evaluation in zip(candidates, evaluations)
        if evaluation.mean_mape_pct <= best_mape * accuracy_tolerance
    ]
    winner, winner_eval = min(
        tied,
        key=lambda pair: pair[1].mean_fit_seconds + pair[1].mean_forecast_seconds,
    )

    if len(tied) > 1:
        reason = (
            f"{winner.name} selected: within {accuracy_tolerance:g}x of the "
            f"best MAPE ({winner_eval.mean_mape_pct:.4f}% vs {best_mape:.4f}%) "
            f"and cheapest to run"
        )
    else:
        reason = (
            f"{winner.name} selected: best MAPE outright "
            f"({winner_eval.mean_mape_pct:.4f}%)"
        )

    winner.fit(history)
    return SelectionReport(
        winner=winner, evaluations=tuple(evaluations), reason=reason
    )
