"""Naive forecasting baselines.

Context rows for the Fig. 5 comparison: any learned predictor must
beat *persistence* (tomorrow equals today) and *drift* (linear
extrapolation of the last step) to justify its runtime.  Both are
O(N) with zero training cost, and both slot into the same
:class:`~repro.prediction.base.LagSeriesPredictor` interface as the
learned methods, so the evaluation harness treats them uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import LagSeriesPredictor


class PersistencePredictor(LagSeriesPredictor):
    """Forecast = the last observed sample, held constant."""

    def __init__(self) -> None:
        super().__init__(lags=1, train_window=None)

    @property
    def name(self) -> str:
        """Display name."""
        return "Persist"

    def _fit_impl(self, history: np.ndarray) -> None:
        # Nothing to learn.
        return None

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        return window[-1].copy()


class DriftPredictor(LagSeriesPredictor):
    """Forecast continues the last observed first difference.

    ``x[t+1] = x[t] + (x[t] - x[t-1])`` — through the recursive
    multi-step machinery this extrapolates linearly.
    """

    def __init__(self) -> None:
        super().__init__(lags=2, train_window=None)

    @property
    def name(self) -> str:
        """Display name."""
        return "Drift"

    def _fit_impl(self, history: np.ndarray) -> None:
        # Nothing to learn.
        return None

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        return 2.0 * window[-1] - window[-2]
