"""Support vector regression predictor.

Linear epsilon-insensitive SVR (Smola & Schoelkopf [18]) trained in the
primal with averaged mini-batch subgradient descent:

.. math::

    \\min_w \\; \\tfrac{\\lambda}{2} \\lVert w \\rVert^2 +
    \\frac{1}{m} \\sum_i \\max(0, |y_i - w^T x_i - b| - \\varepsilon)

Mini-batches keep the inner loop fully vectorised on numpy, and
averaging the iterates (Polyak averaging) gives a stable deterministic
solution without a QP solver.  Features and targets are standardised;
``epsilon`` is in standardised target units.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import LagSeriesPredictor
from repro.prediction.features import Standardizer, pooled_lag_matrix


class SVRPredictor(LagSeriesPredictor):
    """Pooled linear epsilon-SVR forecaster.

    Parameters
    ----------
    lags, train_window:
        See :class:`repro.prediction.base.LagSeriesPredictor`.
    epsilon:
        Half-width of the insensitive tube, in standardised target
        units; errors inside the tube incur no loss, which is what
        gives SVR its characteristic error floor in the paper's Fig. 5.
    reg_lambda:
        L2 regularisation strength.
    epochs:
        Passes of subgradient descent over the training window.
    learning_rate:
        Initial step size (decays as 1/sqrt(t)).
    batch_size:
        Mini-batch size of the vectorised subgradient steps.
    seed:
        Seed for sample shuffling.
    """

    def __init__(
        self,
        lags: int = 4,
        train_window: Optional[int] = 240,
        epsilon: float = 0.02,
        reg_lambda: float = 1.0e-4,
        epochs: int = 40,
        learning_rate: float = 0.1,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(lags=lags, train_window=train_window)
        if epsilon < 0.0:
            raise PredictionError(f"epsilon must be >= 0, got {epsilon}")
        if reg_lambda < 0.0:
            raise PredictionError(f"reg_lambda must be >= 0, got {reg_lambda}")
        if epochs < 1:
            raise PredictionError(f"epochs must be >= 1, got {epochs}")
        if learning_rate <= 0.0:
            raise PredictionError(f"learning_rate must be > 0, got {learning_rate}")
        if batch_size < 1:
            raise PredictionError(f"batch_size must be >= 1, got {batch_size}")
        self._epsilon = float(epsilon)
        self._reg_lambda = float(reg_lambda)
        self._epochs = int(epochs)
        self._learning_rate = float(learning_rate)
        self._batch_size = int(batch_size)
        self._seed = int(seed)
        self._w: Optional[np.ndarray] = None
        self._b = 0.0
        self._x_scaler = Standardizer()
        self._y_scaler = Standardizer()

    @property
    def name(self) -> str:
        """Display name."""
        return "SVR"

    @property
    def epsilon(self) -> float:
        """Insensitive-tube half-width (standardised units)."""
        return self._epsilon

    def _fit_impl(self, history: np.ndarray) -> None:
        x, y = pooled_lag_matrix(history, self._lags)
        self._x_scaler.fit(x)
        self._y_scaler.fit(y[:, None])
        xs = self._x_scaler.transform(x)
        ys = self._y_scaler.transform(y[:, None]).ravel()

        rng = np.random.default_rng(self._seed)
        n_features = xs.shape[1]
        w = np.zeros(n_features)
        b = 0.0
        w_avg = np.zeros(n_features)
        b_avg = 0.0
        step_count = 0

        n = xs.shape[0]
        for _ in range(self._epochs):
            order = rng.permutation(n)
            for lo in range(0, n, self._batch_size):
                batch = order[lo : lo + self._batch_size]
                xb, yb = xs[batch], ys[batch]
                step_count += 1
                lr = self._learning_rate / np.sqrt(step_count)
                residual = yb - (xb @ w + b)
                # Subgradient of the epsilon-insensitive loss: -x where
                # the residual pokes above the tube, +x below, 0 inside.
                sign = np.where(
                    residual > self._epsilon,
                    -1.0,
                    np.where(residual < -self._epsilon, 1.0, 0.0),
                )
                m = xb.shape[0]
                grad_w = self._reg_lambda * w + (sign[None, :] @ xb).ravel() / m
                grad_b = float(sign.mean())
                w = w - lr * grad_w
                b = b - lr * grad_b
                w_avg += (w - w_avg) / step_count
                b_avg += (b - b_avg) / step_count

        self._w = w_avg
        self._b = float(b_avg)

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        assert self._w is not None
        x = self._x_scaler.transform(window.T)
        pred = x @ self._w + self._b
        return self._y_scaler.inverse(pred[:, None]).ravel()
