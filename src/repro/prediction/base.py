"""Common interface of the temperature-distribution predictors.

A :class:`LagSeriesPredictor` learns the one-step map from the last
``lags`` samples of a series to the next sample, pooled over all
modules, and produces multi-step forecasts by recursion.  DNOR refits
it on the recent history at every decision epoch and asks for a
``t_p``-second forecast of the whole distribution.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import PredictionError


class LagSeriesPredictor(abc.ABC):
    """Base class: pooled autoregressive forecaster over module columns.

    Contract: the learned one-step map is **column-wise and pooled** —
    fitting stacks every module column into one lag-feature matrix, and
    :meth:`forecast` applies the same map independently to each column
    of whatever history it is given.  The forecast width therefore
    follows the ``forecast`` history, *not* the fitted width: fitting
    on a column subset (e.g. DNOR's module-strided fit, which cuts the
    fitting bill without changing the shared one-step dynamics) and
    forecasting the full-width history is exact, and is pinned in the
    DNOR test suite.

    Parameters
    ----------
    lags:
        Number of past samples forming the feature window.
    train_window:
        Maximum number of most-recent history rows used for fitting;
        ``None`` uses all available history.
    """

    def __init__(self, lags: int = 5, train_window: Optional[int] = None) -> None:
        if lags < 1:
            raise PredictionError(f"lags must be >= 1, got {lags}")
        if train_window is not None and train_window < lags + 1:
            raise PredictionError(
                f"train_window must exceed lags ({lags}), got {train_window}"
            )
        self._lags = int(lags)
        self._train_window = train_window
        self._fitted = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lags(self) -> int:
        """Feature window length."""
        return self._lags

    @property
    def train_window(self) -> Optional[int]:
        """Training history cap (rows)."""
        return self._train_window

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._fitted

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short display name (``"MLR"``, ``"BPNN"``, ``"SVR"``)."""

    # ------------------------------------------------------------------
    # Fitting and forecasting
    # ------------------------------------------------------------------
    def _training_slice(self, history: np.ndarray) -> np.ndarray:
        """History rows used for fitting, respecting ``train_window``."""
        arr = np.asarray(history, dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise PredictionError(f"history must be 1-D or 2-D, got {arr.shape}")
        if arr.shape[0] < self._lags + 1:
            raise PredictionError(
                f"history of {arr.shape[0]} rows too short for lags={self._lags}"
            )
        if not np.all(np.isfinite(arr)):
            raise PredictionError("history must be finite")
        if self._train_window is not None and arr.shape[0] > self._train_window:
            arr = arr[-self._train_window:]
        return arr

    def fit(self, history: np.ndarray) -> "LagSeriesPredictor":
        """Fit the one-step model on (the tail of) a ``(T, N)`` history."""
        data = self._training_slice(history)
        self._fit_impl(data)
        self._fitted = True
        return self

    @abc.abstractmethod
    def _fit_impl(self, history: np.ndarray) -> None:
        """Learn the one-step map from a validated ``(T, N)`` block."""

    @abc.abstractmethod
    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        """Map a ``(lags, N)`` window to the next ``(N,)`` sample."""

    def forecast(self, history: np.ndarray, n_steps: int) -> np.ndarray:
        """Recursive multi-step forecast from the end of ``history``.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_steps, N)``; row 0 is the first future sample.
        """
        if not self._fitted:
            raise PredictionError(f"{self.name} predictor used before fit()")
        if n_steps < 1:
            raise PredictionError(f"n_steps must be >= 1, got {n_steps}")
        arr = np.asarray(history, dtype=float)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[:, None]
        if arr.shape[0] < self._lags:
            raise PredictionError(
                f"history of {arr.shape[0]} rows too short for lags={self._lags}"
            )
        window = arr[-self._lags:].copy()
        out = np.empty((n_steps, arr.shape[1]))
        for step in range(n_steps):
            nxt = self._predict_one_step(window)
            out[step] = nxt
            window = np.vstack([window[1:], nxt[None, :]])
        return out[:, 0] if squeeze else out

    def fit_forecast(self, history: np.ndarray, n_steps: int) -> np.ndarray:
        """Convenience: :meth:`fit` on the history then :meth:`forecast`."""
        return self.fit(history).forecast(history, n_steps)
