"""Common interface of the temperature-distribution predictors.

A :class:`LagSeriesPredictor` learns the one-step map from the last
``lags`` samples of a series to the next sample, pooled over all
modules, and produces multi-step forecasts by recursion.  DNOR refits
it on the recent history at every decision epoch and asks for a
``t_p``-second forecast of the whole distribution.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.errors import PredictionError


class LagSeriesPredictor(abc.ABC):
    """Base class: pooled autoregressive forecaster over module columns.

    Contract: the learned one-step map is **column-wise and pooled** —
    fitting stacks every module column into one lag-feature matrix, and
    :meth:`forecast` applies the same map independently to each column
    of whatever history it is given.  The forecast width therefore
    follows the ``forecast`` history, *not* the fitted width: fitting
    on a column subset (e.g. DNOR's module-strided fit, which cuts the
    fitting bill without changing the shared one-step dynamics) and
    forecasting the full-width history is exact, and is pinned in the
    DNOR test suite.

    Parameters
    ----------
    lags:
        Number of past samples forming the feature window.
    train_window:
        Maximum number of most-recent history rows used for fitting;
        ``None`` uses all available history.
    """

    def __init__(self, lags: int = 5, train_window: Optional[int] = None) -> None:
        if lags < 1:
            raise PredictionError(f"lags must be >= 1, got {lags}")
        if train_window is not None and train_window < lags + 1:
            raise PredictionError(
                f"train_window must exceed lags ({lags}), got {train_window}"
            )
        self._lags = int(lags)
        self._train_window = train_window
        self._fitted = False
        # Streaming state (partial_fit): the buffered training tail and
        # the tail the model was last successfully updated on.
        self._stream: Optional[np.ndarray] = None
        self._stream_model: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def lags(self) -> int:
        """Feature window length."""
        return self._lags

    @property
    def train_window(self) -> Optional[int]:
        """Training history cap (rows)."""
        return self._train_window

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has completed at least once."""
        return self._fitted

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short display name (``"MLR"``, ``"BPNN"``, ``"SVR"``)."""

    # ------------------------------------------------------------------
    # Fitting and forecasting
    # ------------------------------------------------------------------
    def _training_slice(self, history: np.ndarray) -> np.ndarray:
        """History rows used for fitting, respecting ``train_window``."""
        arr = np.asarray(history, dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2:
            raise PredictionError(f"history must be 1-D or 2-D, got {arr.shape}")
        if arr.shape[0] < self._lags + 1:
            raise PredictionError(
                f"history of {arr.shape[0]} rows too short for lags={self._lags}"
            )
        if not np.all(np.isfinite(arr)):
            raise PredictionError("history must be finite")
        if self._train_window is not None and arr.shape[0] > self._train_window:
            arr = arr[-self._train_window:]
        return arr

    def fit(self, history: np.ndarray) -> "LagSeriesPredictor":
        """Fit the one-step model on (the tail of) a ``(T, N)`` history.

        A full fit starts a fresh stream: any state accumulated through
        :meth:`partial_fit` is discarded first.
        """
        self.reset_partial()
        data = self._training_slice(history)
        self._fit_impl(data)
        self._fitted = True
        return self

    def partial_fit(self, new_rows: np.ndarray) -> "LagSeriesPredictor":
        """Absorb newly arrived history rows into the streamed model.

        Appends ``new_rows`` to an internal buffer, slides the buffer to
        the most recent ``train_window`` rows, and refits the one-step
        map on that tail — by default a full :meth:`_fit_impl` refit;
        subclasses may override :meth:`_partial_fit_impl` with a cheaper
        incremental update (``MLRPredictor`` maintains windowed normal
        equations).  The resulting model is **exact**: identical to a
        full :meth:`fit` on the same streamed tail (pinned bitwise for
        integer-valued histories, where every normal-equation entry is
        exact in float64, and to tight tolerance on real data).

        A too-short buffer raises :class:`PredictionError` exactly like
        :meth:`fit`, but the appended rows are *retained*, so streaming
        callers can keep feeding until enough history accumulates.
        """
        rows = np.asarray(new_rows, dtype=float)
        if rows.ndim == 1:
            rows = rows[:, None]
        if rows.ndim != 2:
            raise PredictionError(
                f"new rows must be 1-D or 2-D, got {rows.shape}"
            )
        if rows.size and not np.all(np.isfinite(rows)):
            raise PredictionError("history must be finite")
        buffered = self._stream
        if (
            buffered is not None
            and rows.shape[0]
            and rows.shape[1] != buffered.shape[1]
        ):
            raise PredictionError(
                f"streamed rows changed width from {buffered.shape[1]} to "
                f"{rows.shape[1]}; call reset_partial() to start a new stream"
            )
        if buffered is None or buffered.shape[0] == 0:
            combined = rows
        elif rows.shape[0] == 0:
            combined = buffered
        else:
            combined = np.vstack([buffered, rows])
        if (
            self._train_window is not None
            and combined.shape[0] > self._train_window
        ):
            tail = np.ascontiguousarray(combined[-self._train_window:])
        else:
            tail = combined
        self._stream = tail
        if tail.shape[0] < self._lags + 1:
            raise PredictionError(
                f"streamed history of {tail.shape[0]} rows too short for "
                f"lags={self._lags}"
            )
        self._partial_fit_impl(self._stream_model, tail, int(rows.shape[0]))
        self._stream_model = tail
        self._fitted = True
        return self

    def reset_partial(self) -> "LagSeriesPredictor":
        """Drop all streamed (:meth:`partial_fit`) state."""
        self._stream = None
        self._stream_model = None
        self._reset_partial_impl()
        return self

    @abc.abstractmethod
    def _fit_impl(self, history: np.ndarray) -> None:
        """Learn the one-step map from a validated ``(T, N)`` block."""

    def _partial_fit_impl(
        self,
        prev: Optional[np.ndarray],
        tail: np.ndarray,
        n_new: int,
    ) -> None:
        """Update the model from training tail ``prev`` to ``tail``.

        ``prev`` is the tail the model was last updated on (``None`` on
        the first successful update) and ``n_new`` the number of rows
        just appended.  The default is a full refit on ``tail``;
        subclasses override this with an incremental update.
        """
        self._fit_impl(tail)

    def _reset_partial_impl(self) -> None:
        """Subclass hook: drop incremental-update state."""

    @abc.abstractmethod
    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        """Map a ``(lags, N)`` window to the next ``(N,)`` sample."""

    def forecast(self, history: np.ndarray, n_steps: int) -> np.ndarray:
        """Recursive multi-step forecast from the end of ``history``.

        Returns
        -------
        numpy.ndarray
            Shape ``(n_steps, N)``; row 0 is the first future sample.
        """
        if not self._fitted:
            raise PredictionError(f"{self.name} predictor used before fit()")
        if n_steps < 1:
            raise PredictionError(f"n_steps must be >= 1, got {n_steps}")
        arr = np.asarray(history, dtype=float)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr[:, None]
        if arr.shape[0] < self._lags:
            raise PredictionError(
                f"history of {arr.shape[0]} rows too short for lags={self._lags}"
            )
        window = arr[-self._lags:].copy()
        out = np.empty((n_steps, arr.shape[1]))
        for step in range(n_steps):
            nxt = self._predict_one_step(window)
            out[step] = nxt
            window = np.vstack([window[1:], nxt[None, :]])
        return out[:, 0] if squeeze else out

    def fit_forecast(self, history: np.ndarray, n_steps: int) -> np.ndarray:
        """Convenience: :meth:`fit` on the history then :meth:`forecast`."""
        return self.fit(history).forecast(history, n_steps)
