"""Lag-feature construction and standardisation.

All three predictors regress the next temperature sample on the last
``lags`` samples of the same series.  The paper pools every module into
one regression problem (the temperature dynamics are shared physics, a
module index only scales them), which both multiplies the training data
by ``N`` and keeps prediction O(N) per step.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import PredictionError


def lag_matrix(series: np.ndarray, lags: int) -> Tuple[np.ndarray, np.ndarray]:
    """Design matrix / target vector for one series.

    Row ``k`` of ``X`` holds ``series[k : k + lags]`` (oldest first) and
    ``y[k] = series[k + lags]``.

    Raises
    ------
    PredictionError
        If the series is shorter than ``lags + 1``.
    """
    s = np.asarray(series, dtype=float)
    if s.ndim != 1:
        raise PredictionError(f"series must be 1-D, got shape {s.shape}")
    if lags < 1:
        raise PredictionError(f"lags must be >= 1, got {lags}")
    n_rows = s.size - lags
    if n_rows < 1:
        raise PredictionError(
            f"series of length {s.size} too short for {lags} lags"
        )
    idx = np.arange(lags)[None, :] + np.arange(n_rows)[:, None]
    return s[idx], s[lags:]


def pooled_lag_matrix(history: np.ndarray, lags: int) -> Tuple[np.ndarray, np.ndarray]:
    """Lag matrix pooling every column (module) of a ``(T, N)`` history.

    Stacks the per-module design matrices; with ``T`` samples and ``N``
    modules the result has ``(T - lags) * N`` rows.
    """
    h = np.asarray(history, dtype=float)
    if h.ndim == 1:
        return lag_matrix(h, lags)
    if h.ndim != 2:
        raise PredictionError(f"history must be 1-D or 2-D, got shape {h.shape}")
    if lags < 1:
        raise PredictionError(f"lags must be >= 1, got {lags}")
    n_rows = h.shape[0] - lags
    if n_rows < 1:
        raise PredictionError(
            f"history of length {h.shape[0]} too short for {lags} lags"
        )
    idx = np.arange(lags)[None, :] + np.arange(n_rows)[:, None]
    # (rows, lags, N) -> (rows * N, lags): module-major stacking.
    x = h[idx]
    x = np.transpose(x, (0, 2, 1)).reshape(n_rows * h.shape[1], lags)
    y = h[lags:].reshape(n_rows * h.shape[1])
    return x, y


class Standardizer:
    """Column-wise zero-mean / unit-variance scaling with inverse.

    Columns with (near-)zero variance scale by 1 to avoid blow-ups —
    relevant when a module's temperature is pinned for a stretch.
    """

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._mean is not None

    def fit(self, data: np.ndarray) -> "Standardizer":
        """Learn column statistics from a 2-D (or 1-D) array."""
        arr = np.asarray(data, dtype=float)
        if arr.size == 0:
            raise PredictionError("cannot standardise an empty array")
        self._mean = arr.mean(axis=0)
        std = arr.std(axis=0)
        self._std = np.where(std > 1.0e-12, std, 1.0)
        return self

    def _require_fitted(self) -> None:
        if self._mean is None:
            raise PredictionError("Standardizer used before fit()")

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Scale data with the learned statistics."""
        self._require_fitted()
        return (np.asarray(data, dtype=float) - self._mean) / self._std

    def inverse(self, data: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        self._require_fitted()
        return np.asarray(data, dtype=float) * self._std + self._mean
