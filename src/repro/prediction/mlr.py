"""Multiple linear regression predictor (the paper's pick).

Ordinary least squares on the pooled lag matrix with an intercept and
a tiny ridge term for numerical safety.  Both fitting (a ``lags+1``
normal-equation solve) and forecasting (one dot product per module)
are O(N) in the module count, matching the paper's observation that
MLR's cost is negligible next to the reconfiguration algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import LagSeriesPredictor
from repro.prediction.features import pooled_lag_matrix


class MLRPredictor(LagSeriesPredictor):
    """Pooled autoregressive OLS forecaster.

    Parameters
    ----------
    lags:
        Feature window length; 4 captures the coolant loop's dominant
        dynamics at the 0.5 s sample period.
    train_window:
        Most-recent history rows used per fit (default 240 = two
        minutes at 0.5 s).
    ridge:
        Tikhonov term added to the normal equations; keeps the solve
        well-posed when the temperature is nearly constant.
    """

    def __init__(
        self,
        lags: int = 4,
        train_window: Optional[int] = 240,
        ridge: float = 1.0e-8,
    ) -> None:
        super().__init__(lags=lags, train_window=train_window)
        if ridge < 0.0:
            raise PredictionError(f"ridge must be >= 0, got {ridge}")
        self._ridge = float(ridge)
        self._coef: Optional[np.ndarray] = None  # (lags,)
        self._intercept = 0.0
        # Windowed normal equations for incremental refits: pre-ridge
        # gram matrix and right-hand side over the pooled lag rows of
        # the current training tail.
        self._gram: Optional[np.ndarray] = None  # (lags+1, lags+1)
        self._rhs: Optional[np.ndarray] = None  # (lags+1,)

    @property
    def name(self) -> str:
        """Display name."""
        return "MLR"

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted lag coefficients (oldest lag first)."""
        if self._coef is None:
            raise PredictionError("MLR predictor used before fit()")
        return self._coef.copy()

    @property
    def intercept(self) -> float:
        """Fitted intercept."""
        if self._coef is None:
            raise PredictionError("MLR predictor used before fit()")
        return self._intercept

    @staticmethod
    def _normal_blocks(history: np.ndarray, lags: int) -> tuple:
        """Pre-ridge ``(gram, rhs)`` over a history block's pooled rows."""
        x, y = pooled_lag_matrix(history, lags)
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        return design.T @ design, design.T @ y

    def _solve_normal_equations(self) -> None:
        assert self._gram is not None and self._rhs is not None
        gram = self._gram.copy()
        gram[np.diag_indices_from(gram)] += self._ridge
        solution = np.linalg.solve(gram, self._rhs)
        self._coef = solution[:-1]
        self._intercept = float(solution[-1])

    def _fit_impl(self, history: np.ndarray) -> None:
        self._gram, self._rhs = self._normal_blocks(history, self._lags)
        self._solve_normal_equations()

    def _partial_fit_impl(self, prev, tail, n_new) -> None:
        """Slide the windowed normal equations instead of rebuilding.

        The pooled lag rows of the sliding window change only at its
        edges: appending ``m`` history rows adds the ``m*N`` design rows
        whose targets lie in the appended region (their lag windows
        reach back ``lags`` rows, all inside the new tail), and evicting
        ``e`` rows off the front removes the ``e*N`` design rows whose
        targets lie in ``prev[lags : e+lags]``.  Both edge blocks are
        built by the same :func:`pooled_lag_matrix` and added to /
        subtracted from the gram/rhs — a rank-``m*N`` / ``e*N`` update
        costing O(edge) instead of O(window).  When the overlap between
        the old and new windows has no complete lag row left
        (``len(tail) < n_new + lags``) the update degenerates and a full
        rebuild is cheaper and exact by construction.
        """
        lags = self._lags
        if (
            prev is None
            or self._gram is None
            or tail.shape[0] < n_new + lags
        ):
            self._fit_impl(tail)
            return
        if n_new == 0 and self._coef is not None:
            return
        evicted = prev.shape[0] + n_new - tail.shape[0]
        gram_add, rhs_add = self._normal_blocks(
            tail[-(n_new + lags):], lags
        )
        self._gram += gram_add
        self._rhs += rhs_add
        if evicted > 0:
            gram_del, rhs_del = self._normal_blocks(
                prev[: evicted + lags], lags
            )
            self._gram -= gram_del
            self._rhs -= rhs_del
        self._solve_normal_equations()

    def _reset_partial_impl(self) -> None:
        self._gram = None
        self._rhs = None

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        assert self._coef is not None
        return window.T @ self._coef + self._intercept
