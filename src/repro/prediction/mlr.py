"""Multiple linear regression predictor (the paper's pick).

Ordinary least squares on the pooled lag matrix with an intercept and
a tiny ridge term for numerical safety.  Both fitting (a ``lags+1``
normal-equation solve) and forecasting (one dot product per module)
are O(N) in the module count, matching the paper's observation that
MLR's cost is negligible next to the reconfiguration algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import PredictionError
from repro.prediction.base import LagSeriesPredictor
from repro.prediction.features import pooled_lag_matrix


class MLRPredictor(LagSeriesPredictor):
    """Pooled autoregressive OLS forecaster.

    Parameters
    ----------
    lags:
        Feature window length; 4 captures the coolant loop's dominant
        dynamics at the 0.5 s sample period.
    train_window:
        Most-recent history rows used per fit (default 240 = two
        minutes at 0.5 s).
    ridge:
        Tikhonov term added to the normal equations; keeps the solve
        well-posed when the temperature is nearly constant.
    """

    def __init__(
        self,
        lags: int = 4,
        train_window: Optional[int] = 240,
        ridge: float = 1.0e-8,
    ) -> None:
        super().__init__(lags=lags, train_window=train_window)
        if ridge < 0.0:
            raise PredictionError(f"ridge must be >= 0, got {ridge}")
        self._ridge = float(ridge)
        self._coef: Optional[np.ndarray] = None  # (lags,)
        self._intercept = 0.0

    @property
    def name(self) -> str:
        """Display name."""
        return "MLR"

    @property
    def coefficients(self) -> np.ndarray:
        """Fitted lag coefficients (oldest lag first)."""
        if self._coef is None:
            raise PredictionError("MLR predictor used before fit()")
        return self._coef.copy()

    @property
    def intercept(self) -> float:
        """Fitted intercept."""
        if self._coef is None:
            raise PredictionError("MLR predictor used before fit()")
        return self._intercept

    def _fit_impl(self, history: np.ndarray) -> None:
        x, y = pooled_lag_matrix(history, self._lags)
        design = np.hstack([x, np.ones((x.shape[0], 1))])
        gram = design.T @ design
        gram[np.diag_indices_from(gram)] += self._ridge
        solution = np.linalg.solve(gram, design.T @ y)
        self._coef = solution[:-1]
        self._intercept = float(solution[-1])

    def _predict_one_step(self, window: np.ndarray) -> np.ndarray:
        assert self._coef is not None
        return window.T @ self._coef + self._intercept
