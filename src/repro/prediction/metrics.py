"""Forecast error metrics.

The paper evaluates predictors with the mean absolute percentage error
(Eq. 3):

.. math::

    M \\equiv \\frac{100}{n} \\sum_{t=1}^{n}
    \\left| \\frac{A_t - F_t}{A_t} \\right| \\%

with ``A`` the actual and ``F`` the forecast values.  RMSE/MAE/max-APE
are included for completeness; all metrics flatten their inputs, so a
``(horizon, n_modules)`` forecast block is scored in one call.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PredictionError


def _validated(actual: np.ndarray, forecast: np.ndarray) -> tuple:
    a = np.asarray(actual, dtype=float).ravel()
    f = np.asarray(forecast, dtype=float).ravel()
    if a.size == 0:
        raise PredictionError("metrics need at least one sample")
    if a.shape != f.shape:
        raise PredictionError(
            f"actual and forecast shapes differ: {a.shape} vs {f.shape}"
        )
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(f))):
        raise PredictionError("metrics require finite inputs")
    return a, f


def mape(actual: np.ndarray, forecast: np.ndarray) -> float:
    """Mean absolute percentage error, in percent (paper Eq. 3).

    Raises
    ------
    PredictionError
        If any actual value is zero (the metric is undefined there).
    """
    a, f = _validated(actual, forecast)
    if np.any(a == 0.0):
        raise PredictionError("MAPE undefined for zero actual values")
    return float(100.0 * np.mean(np.abs((a - f) / a)))


def max_ape(actual: np.ndarray, forecast: np.ndarray) -> float:
    """Worst-case absolute percentage error, in percent."""
    a, f = _validated(actual, forecast)
    if np.any(a == 0.0):
        raise PredictionError("APE undefined for zero actual values")
    return float(100.0 * np.max(np.abs((a - f) / a)))


def rmse(actual: np.ndarray, forecast: np.ndarray) -> float:
    """Root-mean-square error in the data's units."""
    a, f = _validated(actual, forecast)
    return float(np.sqrt(np.mean((a - f) ** 2)))


def mae(actual: np.ndarray, forecast: np.ndarray) -> float:
    """Mean absolute error in the data's units."""
    a, f = _validated(actual, forecast)
    return float(np.mean(np.abs(a - f)))
