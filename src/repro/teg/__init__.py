"""Thermoelectric generator device and reconfigurable-array substrate.

This subpackage implements the device level of the paper:

* :mod:`repro.teg.materials` — thermoelectric couple/material models.
* :mod:`repro.teg.model` — the pluggable :class:`ModuleModel` protocol
  and its ``model_type`` tagged-JSON registry; every other layer talks
  to modules through it.
* :mod:`repro.teg.module` — the single-module electrical model of the
  paper's Eq. (2): ``E = alpha * dT * N_cpl`` behind an internal
  resistance, with I-V / P-V curves and the maximum power point; the
  registered ``"single-material"`` model.
* :mod:`repro.teg.segmented` — segmented/hybrid chains with per-segment
  materials along the hot-to-cold gradient; the registered
  ``"segmented"`` model.
* :mod:`repro.teg.datasheet` — named parameter sets, including the
  TGM-199-1.4-0.8 module used throughout the paper.
* :mod:`repro.teg.network` — exact Thevenin algebra for the
  series-of-parallel-groups topology produced by the switch fabric.
* :mod:`repro.teg.switches` — the three-switch-per-junction fabric of
  the paper's Fig. 4, with toggle accounting for overhead estimation.
* :mod:`repro.teg.array` — :class:`~repro.teg.array.TEGArray`, gluing
  modules, temperatures, and configurations together.
"""

from repro.teg.array import TEGArray
from repro.teg.bank import (
    ChainState,
    bank_mpp,
    bank_power_at_voltage,
    chain_state,
    reconfigure_bank,
)
from repro.teg.faults import FaultMask
from repro.teg.datasheet import (
    MODULE_CATALOG,
    TGM_127_1_0_0_8,
    TGM_199_1_4_0_8,
    TGM_199_1_4_0_8_REALISTIC,
    TGM_287_1_0_1_5,
    get_module,
)
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    BISMUTH_TELLURIDE_REALISTIC,
    LEAD_TELLURIDE,
    SKUTTERUDITE,
    CoupleMaterial,
)
from repro.teg.model import (
    ModuleModel,
    module_model_from_json_dict,
    module_model_to_json_dict,
    register_module_model,
    registered_module_model_types,
)
from repro.teg.module import MPPPoint, SingleMaterialModule, TEGModule
from repro.teg.segmented import (
    ModuleSegment,
    SegmentedModule,
    hybrid_module,
    segmented_emf_reference,
)
from repro.teg.network import (
    PartitionSet,
    SegmentThevenin,
    array_mpp,
    array_mpp_multi,
    array_mpp_rows,
    array_mpp_rows_multi,
    array_thevenin,
    greedy_balanced_partition,
    module_operating_points,
    parallel_reduce,
    partition_multi,
    power_at_current,
    reduce_configuration,
    validate_starts,
)
from repro.teg.switches import (
    SWITCHES_PER_JUNCTION_FLIP,
    JunctionState,
    SwitchFabric,
    count_junction_flips,
    count_switch_toggles,
    junction_states_to_starts,
    starts_to_junction_states,
)

__all__ = [
    "BISMUTH_TELLURIDE",
    "BISMUTH_TELLURIDE_REALISTIC",
    "ChainState",
    "CoupleMaterial",
    "FaultMask",
    "JunctionState",
    "LEAD_TELLURIDE",
    "MODULE_CATALOG",
    "MPPPoint",
    "ModuleModel",
    "ModuleSegment",
    "PartitionSet",
    "SKUTTERUDITE",
    "SegmentedModule",
    "SingleMaterialModule",
    "SWITCHES_PER_JUNCTION_FLIP",
    "SegmentThevenin",
    "SwitchFabric",
    "TEGArray",
    "TEGModule",
    "TGM_127_1_0_0_8",
    "TGM_199_1_4_0_8",
    "TGM_199_1_4_0_8_REALISTIC",
    "TGM_287_1_0_1_5",
    "array_mpp",
    "array_mpp_multi",
    "array_mpp_rows",
    "array_mpp_rows_multi",
    "array_thevenin",
    "bank_mpp",
    "bank_power_at_voltage",
    "chain_state",
    "count_junction_flips",
    "count_switch_toggles",
    "get_module",
    "greedy_balanced_partition",
    "hybrid_module",
    "junction_states_to_starts",
    "module_model_from_json_dict",
    "module_model_to_json_dict",
    "module_operating_points",
    "parallel_reduce",
    "partition_multi",
    "power_at_current",
    "reconfigure_bank",
    "reduce_configuration",
    "register_module_model",
    "registered_module_model_types",
    "segmented_emf_reference",
    "starts_to_junction_states",
    "validate_starts",
]
