"""The reconfigurable TEG array facade.

:class:`TEGArray` binds a module type, a hot-side temperature
distribution and the Thevenin network algebra into the object the
reconfiguration algorithms and the simulator operate on.  It is
deliberately *stateful in temperature only*; the applied electrical
configuration lives in :class:`repro.teg.switches.SwitchFabric` so the
same array can be evaluated under many candidate configurations without
touching hardware state.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ModelParameterError
from repro.teg.model import ModuleModel
from repro.teg.module import MPPPoint
from repro.teg import network


def _normalize_starts(config: object) -> Sequence[int]:
    """Accept either a raw starts sequence or an object with ``.starts``."""
    starts = getattr(config, "starts", config)
    return starts  # validated downstream by network.validate_starts


class TEGArray:
    """A chain of ``N`` identical TEG modules on a radiator surface.

    Parameters
    ----------
    module:
        Electrical model shared by all modules (paper: TGM-199-1.4-0.8).
    n_modules:
        Chain length ``N`` (paper: 100).
    use_temperature_drift:
        When True, per-module EMF/resistance use the material's
        temperature-drift model evaluated at each module's mean junction
        temperature; the paper's constant-parameter model corresponds to
        False (the default).

    Notes
    -----
    Temperatures are set through :meth:`set_temperatures` (hot-side
    Celsius profile plus ambient) or :meth:`set_delta_t` (direct
    temperature differences).  All electrical queries raise until one of
    them has been called.
    """

    def __init__(
        self,
        module: ModuleModel,
        n_modules: int,
        use_temperature_drift: bool = False,
    ) -> None:
        if int(n_modules) != n_modules or n_modules < 1:
            raise ModelParameterError(
                f"n_modules must be a positive integer, got {n_modules!r}"
            )
        self._module = module
        self._n_modules = int(n_modules)
        self._use_drift = bool(use_temperature_drift)
        self._delta_t: Optional[np.ndarray] = None
        self._mean_temp: Optional[np.ndarray] = None
        self._boundary_state = False

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def module(self) -> ModuleModel:
        """The shared module model."""
        return self._module

    @property
    def n_modules(self) -> int:
        """Chain length ``N``."""
        return self._n_modules

    def __len__(self) -> int:
        return self._n_modules

    # ------------------------------------------------------------------
    # Thermal state
    # ------------------------------------------------------------------
    def set_temperatures(
        self, hot_side_c: Sequence[float], ambient_c: float
    ) -> None:
        """Set per-module hot-side temperatures and the shared ambient.

        The paper assumes heatsink temperature equals ambient, so the
        module temperature difference is ``dT_i = T_i - T_amb``.
        """
        hot = np.asarray(hot_side_c, dtype=float)
        if hot.shape != (self._n_modules,):
            raise ConfigurationError(
                f"hot_side_c must have shape ({self._n_modules},), got {hot.shape}"
            )
        if not np.all(np.isfinite(hot)) or not np.isfinite(ambient_c):
            raise ModelParameterError("temperatures must be finite")
        self._delta_t = hot - float(ambient_c)
        self._mean_temp = (hot + float(ambient_c)) / 2.0
        self._boundary_state = False

    def set_delta_t(self, delta_t_k: Sequence[float]) -> None:
        """Set per-module temperature differences directly."""
        delta = np.asarray(delta_t_k, dtype=float)
        if delta.shape != (self._n_modules,):
            raise ConfigurationError(
                f"delta_t_k must have shape ({self._n_modules},), got {delta.shape}"
            )
        if not np.all(np.isfinite(delta)):
            raise ModelParameterError("temperature differences must be finite")
        self._delta_t = delta.copy()
        # Without absolute temperatures, drift evaluation falls back to
        # the material reference point.
        self._mean_temp = None
        self._boundary_state = False

    def set_thermal_state(
        self, delta_t_k: Sequence[float], mean_temp_c: Sequence[float]
    ) -> None:
        """Set boundary-solved differences plus mean junction temperatures.

        The simulator's reference engine uses this to hand the array the
        thermal-boundary solution: per-module temperature differences
        *and* the mean junction temperature each module actually sits
        at, so temperature-interpolated module models (segmented chains)
        evaluate their materials at the right point.  EMFs are evaluated
        at the given means regardless of ``use_temperature_drift``;
        internal resistance stays on the nominal chain value, matching
        the trace-physics plane.
        """
        delta = np.asarray(delta_t_k, dtype=float)
        mean = np.asarray(mean_temp_c, dtype=float)
        if delta.shape != (self._n_modules,) or mean.shape != (self._n_modules,):
            raise ConfigurationError(
                f"delta_t_k and mean_temp_c must both have shape "
                f"({self._n_modules},), got {delta.shape} and {mean.shape}"
            )
        if not np.all(np.isfinite(delta)) or not np.all(np.isfinite(mean)):
            raise ModelParameterError("temperatures must be finite")
        self._delta_t = delta.copy()
        self._mean_temp = mean.copy()
        self._boundary_state = True

    @property
    def delta_t(self) -> np.ndarray:
        """Per-module temperature differences (kelvin)."""
        self._require_thermal_state()
        assert self._delta_t is not None
        return self._delta_t.copy()

    def _require_thermal_state(self) -> None:
        if self._delta_t is None:
            raise ConfigurationError(
                "array temperatures not set; call set_temperatures() or "
                "set_delta_t() first"
            )

    # ------------------------------------------------------------------
    # Per-module electrical vectors
    # ------------------------------------------------------------------
    def emf_vector(self) -> np.ndarray:
        """Per-module open-circuit voltages ``E_i``.

        Routed through the :class:`~repro.teg.model.ModuleModel`
        protocol: mean junction temperatures are passed whenever the
        drift model is enabled or the thermal state came from
        :meth:`set_thermal_state` (the boundary-solved physics plane).
        """
        self._require_thermal_state()
        assert self._delta_t is not None
        if self._mean_temp is not None and (self._use_drift or self._boundary_state):
            return np.asarray(
                self._module.emf(self._delta_t, self._mean_temp), dtype=float
            )
        return np.asarray(self._module.emf(self._delta_t), dtype=float)

    def resistance_vector(self) -> np.ndarray:
        """Per-module internal resistances ``R_i``.

        Nominal chain resistance unless the legacy drift model is
        enabled with absolute temperatures; boundary-solved thermal
        state keeps the nominal value, matching the trace-physics
        plane's single shared module resistance.
        """
        self._require_thermal_state()
        assert self._delta_t is not None
        if self._use_drift and self._mean_temp is not None:
            return np.asarray(
                self._module.internal_resistance(self._mean_temp), dtype=float
            )
        return np.full(
            self._n_modules, float(self._module.internal_resistance())
        )

    def mpp_currents(self) -> np.ndarray:
        """Per-module MPP currents ``I_MPP_i = E_i / 2 R_i`` (Alg. 1 input)."""
        return self.emf_vector() / (2.0 * self.resistance_vector())

    def ideal_power(self) -> float:
        """``P_ideal``: every module at its own MPP (paper Fig. 7 reference).

        Modules with negative temperature difference contribute zero: a
        back-biased module would be disconnected, not milked.
        """
        emf = self.emf_vector()
        res = self.resistance_vector()
        per_module = np.where(emf > 0.0, emf * emf / (4.0 * res), 0.0)
        return float(per_module.sum())

    # ------------------------------------------------------------------
    # Configured-array queries
    # ------------------------------------------------------------------
    def thevenin(self, config: object) -> Tuple[float, float]:
        """Whole-array Thevenin ``(E, R)`` under a configuration."""
        return network.array_thevenin(
            self.emf_vector(), self.resistance_vector(), _normalize_starts(config)
        )

    def configured_mpp(self, config: object) -> MPPPoint:
        """Exact MPP of the array under a configuration."""
        return network.array_mpp(
            self.emf_vector(), self.resistance_vector(), _normalize_starts(config)
        )

    def mpp_batch(
        self, configs: Sequence[object]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Exact MPPs of many candidate configurations in one pass.

        The row-vector sibling of :meth:`configured_mpp`: returns
        ``(power_w, voltage_v, current_a)`` arrays with one entry per
        configuration, bit-identical to calling :meth:`configured_mpp`
        per candidate (see :func:`repro.teg.network.array_mpp_multi`).
        This is the kernel behind INOR's vectorised ``[n_min, n_max]``
        candidate sweep.  A :class:`~repro.teg.network.PartitionSet`
        (e.g. from :meth:`balanced_partitions`) is consumed through its
        flat layout directly.
        """
        if isinstance(configs, network.PartitionSet):
            return network.array_mpp_multi(
                self.emf_vector(), self.resistance_vector(), configs
            )
        return network.array_mpp_multi(
            self.emf_vector(),
            self.resistance_vector(),
            [_normalize_starts(config) for config in configs],
        )

    def balanced_partitions(
        self, n_min: int, n_max: int
    ) -> network.PartitionSet:
        """Greedy balanced partitions for every group count in a window.

        The Algorithm-1 candidate set at the current temperatures, built
        by the vectorised :func:`repro.teg.network.partition_multi`
        kernel (cut indices bit-identical to the scalar walk).  Feed the
        result straight into :meth:`mpp_batch` to score the window.
        """
        return network.partition_multi(self.mpp_currents(), n_min, n_max)

    def power_at_current(self, config: object, current_a: float) -> float:
        """Array output power at a charger-imposed current."""
        return network.power_at_current(
            self.emf_vector(),
            self.resistance_vector(),
            _normalize_starts(config),
            current_a,
        )

    def operating_points(
        self, config: object, current_a: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-module ``(voltage, current, power)`` at an array current."""
        return network.module_operating_points(
            self.emf_vector(),
            self.resistance_vector(),
            _normalize_starts(config),
            current_a,
        )

    def segment_tables(self) -> network.SegmentThevenin:
        """Prefix tables for the DP algorithms, at the current temperatures."""
        return network.SegmentThevenin.from_modules(
            self.emf_vector(), self.resistance_vector()
        )
