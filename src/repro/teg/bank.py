"""Bank-level electrical combination of parallel reconfigurable chains.

A 2-D radiator (see :mod:`repro.thermal.multipath`) carries one
reconfigurable chain per coolant path; the chains' outputs are
paralleled at the charger input.  Each chain is itself a linear
Thevenin source once configured, so the bank reduces in closed form
just like a parallel module group — but at chain granularity.

The important physical consequence, which the tests quantify: banks
force a *common voltage*, so per-path reconfiguration should also aim
for matched chain MPP voltages, or the maldistributed paths drag each
other off their optima.  :func:`bank_mpp` gives the exact combined
optimum for any set of configured chains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.power.charger import TEGCharger
from repro.teg.model import ModuleModel
from repro.teg.module import MPPPoint
from repro.teg.network import array_thevenin


@dataclass(frozen=True)
class ChainState:
    """One configured chain: its Thevenin source and configuration.

    ``config`` is stored as supplied — typically an
    :class:`repro.core.config.ArrayConfiguration`, but anything with a
    ``starts`` attribute (or a raw starts sequence) works; this module
    sits below :mod:`repro.core` in the layering and stays agnostic.
    """

    emf_v: float
    resistance_ohm: float
    config: object


def chain_state(emf: np.ndarray, resistance: np.ndarray, config: object) -> ChainState:
    """Reduce one configured chain to its Thevenin source."""
    starts = getattr(config, "starts", config)
    e_total, r_total = array_thevenin(emf, resistance, starts)
    return ChainState(emf_v=e_total, resistance_ohm=r_total, config=config)


def bank_mpp(chains: Sequence[ChainState]) -> MPPPoint:
    """Exact MPP of parallel-connected configured chains.

    The parallel combination of linear sources is again linear:
    ``R = 1/sum(1/R_c)``, ``E = R * sum(E_c/R_c)``; its MPP is
    ``E^2/4R`` at ``V = E/2``.
    """
    if len(chains) == 0:
        raise ConfigurationError("bank needs at least one chain")
    conductance = np.array([1.0 / c.resistance_ohm for c in chains])
    weighted = np.array([c.emf_v / c.resistance_ohm for c in chains])
    r_bank = 1.0 / float(conductance.sum())
    e_bank = r_bank * float(weighted.sum())
    return MPPPoint(
        voltage_v=e_bank / 2.0,
        current_a=e_bank / (2.0 * r_bank),
        power_w=e_bank * e_bank / (4.0 * r_bank),
    )


def bank_power_at_voltage(chains: Sequence[ChainState], voltage_v: float) -> float:
    """Combined output power with the bank bus held at ``voltage_v``."""
    if len(chains) == 0:
        raise ConfigurationError("bank needs at least one chain")
    power = 0.0
    for chain in chains:
        current = (chain.emf_v - voltage_v) / chain.resistance_ohm
        power += voltage_v * current
    return power


def reconfigure_bank(
    module: ModuleModel,
    delta_t_matrix: np.ndarray,
    charger: Optional[TEGCharger] = None,
) -> List[ChainState]:
    """Run INOR independently on every path of a bank.

    Parameters
    ----------
    module:
        Shared module model.
    delta_t_matrix:
        ``(n_paths, modules_per_path)`` temperature differences (from
        :meth:`repro.thermal.multipath.MultiPathRadiator.delta_t_matrix`).
    charger:
        Converter-aware ranking context handed to each per-path INOR.

    Returns
    -------
    list of ChainState
        One configured chain per path, ready for :func:`bank_mpp`.
    """
    # Imported here: repro.core sits above this module in the layering
    # (core imports teg), so the INOR dependency must stay deferred.
    from repro.core.inor import inor

    matrix = np.asarray(delta_t_matrix, dtype=float)
    if matrix.ndim != 2:
        raise ConfigurationError(
            f"delta_t_matrix must be 2-D, got shape {matrix.shape}"
        )
    alpha = module.emf_coefficient()
    r_module = module.internal_resistance()
    chains = []
    for row in matrix:
        emf = alpha * row
        resistance = np.full(row.size, r_module)
        result = inor(emf, resistance, charger=charger)
        chains.append(chain_state(emf, resistance, result.config))
    return chains
