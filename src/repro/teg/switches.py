"""Switch fabric of the reconfigurable array (paper Fig. 4).

Between every pair of physically adjacent modules sit three switches:
a series switch ``S_S,i`` in the middle and two parallel switches
``S_PT,i`` / ``S_PB,i`` on the top and bottom rails.  Exactly one kind
is closed at a time, so a junction is either in the SERIES state
(``S_S`` closed, rails open) or the PARALLEL state (both rail switches
closed, ``S_S`` open).

Changing a junction from one state to the other therefore toggles all
three switches (one opens/two close, or two open/one closes).  The
fabric's toggle count feeds the per-switch component of the switching
overhead model (:mod:`repro.core.overhead`).
"""

from __future__ import annotations

import enum
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.teg.network import validate_starts

#: Number of physical switches whose state changes when one junction
#: flips between SERIES and PARALLEL.
SWITCHES_PER_JUNCTION_FLIP = 3


class JunctionState(enum.Enum):
    """Electrical state of the junction between two adjacent modules."""

    #: Series switch closed: the right module starts a new series group.
    SERIES = "series"
    #: Rail switches closed: both modules belong to one parallel group.
    PARALLEL = "parallel"


def starts_to_junction_states(
    starts: Sequence[int], n_modules: int
) -> List[JunctionState]:
    """Junction states realising a configuration.

    Junction ``i`` sits between module ``i`` and module ``i + 1``
    (0-based); it is SERIES exactly when module ``i + 1`` begins a new
    group.
    """
    idx = validate_starts(starts, n_modules)
    boundary = set(int(s) for s in idx[1:])
    return [
        JunctionState.SERIES if (i + 1) in boundary else JunctionState.PARALLEL
        for i in range(n_modules - 1)
    ]


def junction_states_to_starts(states: Sequence[JunctionState]) -> Tuple[int, ...]:
    """Inverse of :func:`starts_to_junction_states`."""
    starts = [0]
    for i, state in enumerate(states):
        if state is JunctionState.SERIES:
            starts.append(i + 1)
    return tuple(starts)


def count_junction_flips(
    old_starts: Sequence[int], new_starts: Sequence[int], n_modules: int
) -> int:
    """Number of junctions whose state differs between two configurations."""
    old_idx = validate_starts(old_starts, n_modules)
    new_idx = validate_starts(new_starts, n_modules)
    old_boundaries = set(int(s) for s in old_idx[1:])
    new_boundaries = set(int(s) for s in new_idx[1:])
    return len(old_boundaries.symmetric_difference(new_boundaries))


def count_switch_toggles(
    old_starts: Sequence[int], new_starts: Sequence[int], n_modules: int
) -> int:
    """Number of individual switch state changes between two configurations.

    Each flipped junction toggles :data:`SWITCHES_PER_JUNCTION_FLIP`
    switches.
    """
    return SWITCHES_PER_JUNCTION_FLIP * count_junction_flips(
        old_starts, new_starts, n_modules
    )


class SwitchFabric:
    """Stateful switch matrix tracking reconfiguration activity.

    The fabric holds the currently applied configuration and accumulates
    toggle statistics as new configurations are applied — the counters
    the energy-overhead model consumes.

    Parameters
    ----------
    n_modules:
        Number of modules in the chain (the fabric has ``n_modules - 1``
        junctions).
    initial_starts:
        Configuration the fabric powers up in; defaults to the all-series
        chain, the state with every ``S_S`` closed.
    """

    def __init__(
        self, n_modules: int, initial_starts: Sequence[int] | None = None
    ) -> None:
        if n_modules < 1:
            raise ConfigurationError(f"n_modules must be >= 1, got {n_modules}")
        self._n_modules = int(n_modules)
        if initial_starts is None:
            initial_starts = tuple(range(n_modules))
        idx = validate_starts(initial_starts, n_modules)
        self._starts: Tuple[int, ...] = tuple(int(s) for s in idx)
        self._total_toggles = 0
        self._reconfigurations = 0

    @property
    def n_modules(self) -> int:
        """Number of modules the fabric interconnects."""
        return self._n_modules

    @property
    def n_junctions(self) -> int:
        """Number of three-switch junctions."""
        return self._n_modules - 1

    @property
    def starts(self) -> Tuple[int, ...]:
        """Currently applied configuration (group start indices)."""
        return self._starts

    @property
    def total_toggles(self) -> int:
        """Cumulative individual switch toggles since construction."""
        return self._total_toggles

    @property
    def reconfiguration_count(self) -> int:
        """Number of :meth:`apply` calls that changed at least one junction."""
        return self._reconfigurations

    def junction_states(self) -> List[JunctionState]:
        """Current state of every junction, chain order."""
        return starts_to_junction_states(self._starts, self._n_modules)

    def toggles_to(self, new_starts: Sequence[int]) -> int:
        """Toggle count :meth:`apply` would incur, without applying."""
        return count_switch_toggles(self._starts, new_starts, self._n_modules)

    def apply(self, new_starts: Sequence[int]) -> int:
        """Apply a configuration and return the toggles it required.

        Applying the already-active configuration costs zero toggles and
        does not count as a reconfiguration.
        """
        idx = validate_starts(new_starts, self._n_modules)
        toggles = count_switch_toggles(self._starts, idx, self._n_modules)
        if toggles > 0:
            self._reconfigurations += 1
            self._total_toggles += toggles
            self._starts = tuple(int(s) for s in idx)
        return toggles

    def reset_counters(self) -> None:
        """Zero the accumulated toggle and reconfiguration counters."""
        self._total_toggles = 0
        self._reconfigurations = 0

    def as_switch_vector(self) -> np.ndarray:
        """Boolean matrix of shape ``(n_junctions, 3)``.

        Columns are ``(S_S, S_PT, S_PB)`` closed-state flags, mirroring
        the physical fabric of the paper's Fig. 4.
        """
        states = self.junction_states()
        vec = np.zeros((self.n_junctions, 3), dtype=bool)
        for i, state in enumerate(states):
            if state is JunctionState.SERIES:
                vec[i, 0] = True
            else:
                vec[i, 1] = True
                vec[i, 2] = True
        return vec
