"""Segmented/hybrid TEG module chains along the thermal gradient.

High-gradient recovery regimes — the exhaust duct and the
steel-industry flue of Gaurav & Pandey (arXiv 1708.02920 /
1603.02883) — span junction temperatures no single thermoelectric
material covers well: skutterudite-class couples earn their keep at the
hot face, lead-telluride-class in the middle, bismuth telluride near
the cold plate.  :class:`SegmentedModule` models such a module as a
series chain of material *segments* stacked between the hot and cold
faces:

* each :class:`ModuleSegment` carries a material, its couple count and
  its share of the module's thermal resistance (``fraction``; by
  default proportional to couple count), so segment ``j`` drops
  ``w_j * dT`` of the module's temperature difference;
* the segment's own mean junction temperature sits at the cumulative
  midpoint of its span measured from the hot face:
  ``T_j = T_mean + (1/2 - c_j) * dT`` where ``c_j`` is the fraction of
  the thermal path above the segment's centre;
* the module EMF is the series Seebeck sum
  ``E = sum_j alpha_j(T_j) * N_j * (w_j * dT)`` and the module
  resistance the series sum ``R = sum_j r_j(T_j) * N_j``.

Everything is vectorised over whole sample arrays — the segment loop
runs once per *segment* (a handful), never per sample, which is what
``benchmarks/bench_module_model.py`` gates at >= 3x over the scalar
:func:`segmented_emf_reference` loop.

The decision plane linearises at ``dT -> 0``:
:meth:`SegmentedModule.emf_coefficient` evaluates every segment at the
module mean temperature (nominal reference when ``None``), and
:meth:`SegmentedModule.internal_resistance` returns the nominal series
resistance — one scalar shared by the chain, as the row-stacked
Thevenin kernels require.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelParameterError
from repro.teg.materials import CoupleMaterial
from repro.teg.model import ModuleModel, TempLike, register_module_model

#: Material fields serialised per segment (same list as the
#: single-material model's params dict).
_MATERIAL_FIELDS = (
    "seebeck_v_per_k",
    "resistance_ohm",
    "thermal_conductance_w_per_k",
    "seebeck_temp_coeff_per_k",
    "resistance_temp_coeff_per_k",
)


@dataclass(frozen=True)
class ModuleSegment:
    """One material segment of a segmented module.

    Parameters
    ----------
    material:
        Per-couple electrical properties of this segment.
    n_couples:
        Series-connected couples inside the segment.
    fraction:
        This segment's share of the module's hot-to-cold thermal
        resistance (its share of the module dT).  ``None`` (default)
        weights the segment by its couple count relative to the whole
        module.
    """

    material: CoupleMaterial
    n_couples: int
    fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if int(self.n_couples) != self.n_couples or self.n_couples <= 0:
            raise ModelParameterError(
                f"segment n_couples must be a positive integer, "
                f"got {self.n_couples!r}"
            )
        if self.fraction is not None:
            value = float(self.fraction)
            if not math.isfinite(value) or value <= 0.0:
                raise ModelParameterError(
                    f"segment fraction must be a positive finite number, "
                    f"got {self.fraction!r}"
                )


@register_module_model
@dataclass(frozen=True)
class SegmentedModule(ModuleModel):
    """A TEG module built from material segments along the gradient.

    Parameters
    ----------
    name:
        Catalog-style name, e.g. ``"SEG-3-EXHAUST"``.
    segments:
        Hot-face-first tuple of :class:`ModuleSegment`; at least one.
    """

    name: str
    segments: Tuple[ModuleSegment, ...]

    model_type = "segmented"

    def __post_init__(self) -> None:
        segments = tuple(self.segments)
        if not segments:
            raise ModelParameterError(
                "a segmented module needs at least one segment"
            )
        object.__setattr__(self, "segments", segments)

    # ------------------------------------------------------------------
    # Geometry of the thermal chain
    # ------------------------------------------------------------------
    @property
    def n_couples(self) -> int:
        """Total series couple count across all segments."""
        return sum(int(seg.n_couples) for seg in self.segments)

    def segment_weights(self) -> np.ndarray:
        """Each segment's share ``w_j`` of the module dT (sums to 1).

        Explicit fractions are normalised by their sum; omitted
        fractions default to the segment's couple-count share.
        """
        if any(seg.fraction is not None for seg in self.segments):
            raw = np.array(
                [
                    (
                        float(seg.fraction)
                        if seg.fraction is not None
                        else float(seg.n_couples) / float(self.n_couples)
                    )
                    for seg in self.segments
                ]
            )
        else:
            raw = np.array(
                [float(seg.n_couples) for seg in self.segments]
            )
        return raw / raw.sum()

    def segment_centers(self) -> np.ndarray:
        """Cumulative-midpoint position ``c_j`` of each segment.

        Measured as the fraction of the thermal path from the hot face
        to the segment's centre: the first segment sits at ``w_0 / 2``,
        the last at ``1 - w_last / 2``.
        """
        weights = self.segment_weights()
        return np.cumsum(weights) - weights / 2.0

    def segment_mean_temps(
        self, delta_t_k: np.ndarray, mean_temp_c
    ) -> Tuple[np.ndarray, ...]:
        """Per-segment mean junction temperatures, vectorised.

        The hot face sits at ``mean + dT/2``; walking down the chain,
        segment ``j``'s centre sees ``mean + (1/2 - c_j) * dT``.
        """
        centers = self.segment_centers()
        return tuple(
            mean_temp_c + (0.5 - float(c)) * delta_t_k for c in centers
        )

    # ------------------------------------------------------------------
    # ModuleModel protocol
    # ------------------------------------------------------------------
    def emf(
        self, delta_t_k: np.ndarray, mean_temp_c: TempLike = None
    ) -> np.ndarray:
        """Series Seebeck sum over the segments, vectorised.

        ``sum_j alpha_j(T_j) * N_j * (w_j * dT)`` with every operation
        elementwise over the sample array; the Python loop runs per
        segment only.  ``mean_temp_c=None`` evaluates every segment at
        its material reference temperature.
        """
        delta = np.asarray(delta_t_k, dtype=float)
        weights = self.segment_weights()
        centers = self.segment_centers()
        total = np.zeros_like(delta)
        for seg, w, c in zip(self.segments, weights, centers):
            seg_delta = float(w) * delta
            if mean_temp_c is None:
                alpha = seg.material.seebeck_v_per_k
            else:
                seg_mean = mean_temp_c + (0.5 - float(c)) * delta
                alpha = seg.material.seebeck_at(seg_mean)
            total = total + alpha * seg_delta * seg.n_couples
        return total

    def emf_coefficient(self, mean_temp_c: TempLike = None):
        """Decision-plane linearisation at ``dT -> 0``.

        Every segment's Seebeck coefficient is evaluated at the module
        mean temperature (the segments collapse onto it as the gradient
        vanishes), weighted by its dT share: ``sum_j alpha_j * N_j *
        w_j``.  The nominal call returns a plain float.
        """
        weights = self.segment_weights()
        total = 0.0
        for seg, w in zip(self.segments, weights):
            if mean_temp_c is None:
                alpha = seg.material.seebeck_v_per_k
            else:
                alpha = seg.material.seebeck_at(mean_temp_c)
            total = total + alpha * seg.n_couples * float(w)
        return total

    def internal_resistance(self, mean_temp_c: TempLike = None):
        """Series resistance sum over the segments.

        The nominal call returns the plain-float chain resistance the
        batched kernels share; with mean temperatures each segment's
        resistance is drift-evaluated at its own junction temperature
        (requires the module dT to place the segments — the scalar
        linearisation evaluates all segments at the given mean).
        """
        total = 0.0
        for seg in self.segments:
            if mean_temp_c is None:
                res = seg.material.resistance_ohm
            else:
                res = seg.material.resistance_at(mean_temp_c)
            total = total + res * seg.n_couples
        return total

    def params_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "segments": [
                {
                    "n_couples": int(seg.n_couples),
                    "fraction": (
                        None if seg.fraction is None else float(seg.fraction)
                    ),
                    "material": {
                        name: float(getattr(seg.material, name))
                        for name in _MATERIAL_FIELDS
                    },
                }
                for seg in self.segments
            ],
        }

    @classmethod
    def from_params_dict(cls, params: Dict[str, object]) -> "SegmentedModule":
        return cls(
            name=str(params["name"]),
            segments=tuple(
                ModuleSegment(
                    material=CoupleMaterial(**entry["material"]),
                    n_couples=int(entry["n_couples"]),
                    fraction=(
                        None
                        if entry.get("fraction") is None
                        else float(entry["fraction"])
                    ),
                )
                for entry in params["segments"]
            ),
        )


def hybrid_module(
    name: str,
    hot_material: CoupleMaterial,
    cold_material: CoupleMaterial,
    n_couples_hot: int,
    n_couples_cold: int,
    hot_fraction: Optional[float] = None,
) -> SegmentedModule:
    """Two-segment hybrid: one hot-side and one cold-side material.

    The Gaurav & Pandey "hybrid" arrangement (arXiv 1603.02883): a
    high-temperature couple bank facing the duct, bismuth telluride on
    the cold plate.  ``hot_fraction`` optionally fixes the hot
    segment's share of the module dT (both segments get explicit
    fractions); the default weights by couple count.
    """
    if hot_fraction is None:
        fractions: Tuple[Optional[float], Optional[float]] = (None, None)
    else:
        value = float(hot_fraction)
        if not 0.0 < value < 1.0:
            raise ModelParameterError(
                f"hot_fraction must be in (0, 1), got {hot_fraction!r}"
            )
        fractions = (value, 1.0 - value)
    return SegmentedModule(
        name=name,
        segments=(
            ModuleSegment(
                material=hot_material,
                n_couples=n_couples_hot,
                fraction=fractions[0],
            ),
            ModuleSegment(
                material=cold_material,
                n_couples=n_couples_cold,
                fraction=fractions[1],
            ),
        ),
    )


def segmented_emf_reference(
    module: SegmentedModule,
    delta_t_k: Sequence[float],
    mean_temp_c: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Per-sample scalar reference of :meth:`SegmentedModule.emf`.

    Walks the flattened sample array one entry at a time with scalar
    material evaluations — the loop the vectorised path is pinned
    bit-identical to (and benchmarked against in
    ``benchmarks/bench_module_model.py``).
    """
    delta = np.asarray(delta_t_k, dtype=float)
    mean = None if mean_temp_c is None else np.asarray(mean_temp_c, dtype=float)
    if mean is not None and mean.shape != delta.shape:
        raise ModelParameterError(
            f"mean_temp_c shape {mean.shape} does not match "
            f"delta_t_k shape {delta.shape}"
        )
    weights = module.segment_weights()
    centers = module.segment_centers()
    flat_delta = delta.reshape(-1)
    flat_mean = None if mean is None else mean.reshape(-1)
    out = np.empty_like(flat_delta)
    for i in range(flat_delta.size):
        d = float(flat_delta[i])
        total = 0.0
        for seg, w, c in zip(module.segments, weights, centers):
            seg_delta = float(w) * d
            if flat_mean is None:
                alpha = seg.material.seebeck_v_per_k
            else:
                seg_mean = float(flat_mean[i]) + (0.5 - float(c)) * d
                alpha = seg.material.seebeck_at(seg_mean)
            total = total + alpha * seg_delta * seg.n_couples
        out[i] = total
    return out.reshape(delta.shape)
