"""Single TEG module electrical model (paper Eq. 2).

A module is ``N_cpl`` thermoelectric couples electrically in series.
With a hot-to-cold temperature difference ``dT`` it behaves as a linear
Thevenin source

.. math::

    E_{teg} = \\alpha \\cdot \\Delta T \\cdot N_{cpl}, \\qquad
    I_{teg} = \\frac{E_{teg}}{R_{teg} + R_{load}}, \\qquad
    P_{teg} = I_{teg}^2 R_{load}

which is exactly the model the paper adopts from Goupil et al. [9].
The maximum power point (MPP) of such a source is at half the
open-circuit voltage: ``V_mpp = E/2``, ``I_mpp = E / (2 R)``,
``P_mpp = E^2 / (4 R)`` — the black dots of the paper's Fig. 1.

:class:`TEGModule` is the first registered
:class:`~repro.teg.model.ModuleModel` (type tag ``"single-material"``)
— its protocol methods are pinned bit-identical to the pre-protocol
inline arithmetic: the nominal :meth:`TEGModule.emf_coefficient` is
exactly ``material.seebeck_v_per_k * n_couples`` and the vectorised
:meth:`TEGModule.emf` keeps the physics plane's historical
``(alpha * dT) * N`` expression order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ModelParameterError
from repro.teg.materials import CoupleMaterial
from repro.teg.model import ModuleModel, TempLike, register_module_model
from repro.units import require_positive

#: Material fields serialised into the single-material params dict.
_MATERIAL_FIELDS = (
    "seebeck_v_per_k",
    "resistance_ohm",
    "thermal_conductance_w_per_k",
    "seebeck_temp_coeff_per_k",
    "resistance_temp_coeff_per_k",
)


@dataclass(frozen=True)
class MPPPoint:
    """Maximum power point of a module or an array.

    Attributes
    ----------
    voltage_v, current_a, power_w:
        Operating voltage, current and output power at the MPP.
    """

    voltage_v: float
    current_a: float
    power_w: float


@register_module_model
@dataclass(frozen=True)
class TEGModule(ModuleModel):
    """Electrical model of one thermoelectric generator module.

    Parameters
    ----------
    name:
        Catalog name, e.g. ``"TGM-199-1.4-0.8"``.
    material:
        Per-couple electrical properties.
    n_couples:
        Number of series-connected couples inside the module.
    """

    name: str
    material: CoupleMaterial
    n_couples: int

    model_type = "single-material"

    def __post_init__(self) -> None:
        if int(self.n_couples) != self.n_couples or self.n_couples <= 0:
            raise ModelParameterError(
                f"n_couples must be a positive integer, got {self.n_couples!r}"
            )

    # ------------------------------------------------------------------
    # Thevenin parameters
    # ------------------------------------------------------------------
    def open_circuit_voltage(
        self, delta_t_k: float, mean_temp_c: Optional[float] = None
    ) -> float:
        """EMF ``E = alpha * dT * N_cpl`` for a temperature difference.

        Parameters
        ----------
        delta_t_k:
            Hot-side minus cold-side temperature difference in kelvin.
            Negative differences are physically meaningful (module
            back-biased) and return a negative EMF.
        mean_temp_c:
            Mean junction temperature for the optional material drift
            model; defaults to the material reference temperature.
        """
        alpha = (
            self.material.seebeck_v_per_k
            if mean_temp_c is None
            else self.material.seebeck_at(mean_temp_c)
        )
        return alpha * delta_t_k * self.n_couples

    def internal_resistance(self, mean_temp_c: TempLike = None):
        """Module internal resistance ``R_teg`` in ohms.

        ``mean_temp_c`` may be a scalar or an array (vectorised); the
        nominal call returns a plain float.
        """
        if mean_temp_c is None:
            return self.material.resistance_ohm * self.n_couples
        return self.material.resistance_at(mean_temp_c) * self.n_couples

    # ------------------------------------------------------------------
    # ModuleModel protocol
    # ------------------------------------------------------------------
    def emf(
        self, delta_t_k: np.ndarray, mean_temp_c: TempLike = None
    ) -> np.ndarray:
        """Vectorised EMF map (the physics plane's expression order).

        With ``mean_temp_c=None`` this is exactly the pre-protocol
        inline expression ``seebeck * dT * N``; with mean temperatures
        the per-entry drift coefficient replaces the nominal Seebeck
        value in the same position, so zero-coefficient materials stay
        bit-identical (the drift scale is exactly 1.0).
        """
        if mean_temp_c is None:
            return self.material.seebeck_v_per_k * delta_t_k * self.n_couples
        return self.material.seebeck_at(mean_temp_c) * delta_t_k * self.n_couples

    def emf_coefficient(self, mean_temp_c: TempLike = None):
        """Nominal (or drift-evaluated) EMF per kelvin of module dT."""
        if mean_temp_c is None:
            return self.material.seebeck_v_per_k * self.n_couples
        return self.material.seebeck_at(mean_temp_c) * self.n_couples

    def params_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n_couples": int(self.n_couples),
            "material": {
                name: float(getattr(self.material, name))
                for name in _MATERIAL_FIELDS
            },
        }

    @classmethod
    def from_params_dict(cls, params: Dict[str, object]) -> "TEGModule":
        return cls(
            name=str(params["name"]),
            material=CoupleMaterial(**params["material"]),
            n_couples=int(params["n_couples"]),
        )

    # ------------------------------------------------------------------
    # Operating-point relations
    # ------------------------------------------------------------------
    def current_at_voltage(
        self,
        voltage_v: float,
        delta_t_k: float,
        mean_temp_c: Optional[float] = None,
    ) -> float:
        """Terminal current for a terminal voltage (linear I-V line).

        ``mean_temp_c`` evaluates *both* the EMF and the internal
        resistance at the same mean junction temperature, so the
        drift model is applied consistently across the I-V line.
        """
        emf = self.open_circuit_voltage(delta_t_k, mean_temp_c)
        return (emf - voltage_v) / self.internal_resistance(mean_temp_c)

    def voltage_at_current(
        self,
        current_a: float,
        delta_t_k: float,
        mean_temp_c: Optional[float] = None,
    ) -> float:
        """Terminal voltage for a terminal current."""
        emf = self.open_circuit_voltage(delta_t_k, mean_temp_c)
        return emf - current_a * self.internal_resistance(mean_temp_c)

    def power_at_current(
        self,
        current_a: float,
        delta_t_k: float,
        mean_temp_c: Optional[float] = None,
    ) -> float:
        """Output power delivered at a given terminal current."""
        return (
            self.voltage_at_current(current_a, delta_t_k, mean_temp_c)
            * current_a
        )

    def power_at_load(self, load_ohm: float, delta_t_k: float) -> float:
        """Power into a resistive load ``R_load`` (paper Eq. 2 verbatim)."""
        require_positive(load_ohm, "load_ohm")
        emf = self.open_circuit_voltage(delta_t_k)
        current = emf / (self.internal_resistance() + load_ohm)
        return current * current * load_ohm

    def short_circuit_current(self, delta_t_k: float) -> float:
        """Current with the terminals shorted."""
        return self.open_circuit_voltage(delta_t_k) / self.internal_resistance()

    # ------------------------------------------------------------------
    # Maximum power point
    # ------------------------------------------------------------------
    def mpp(self, delta_t_k: float) -> MPPPoint:
        """Maximum power point for a temperature difference.

        For a linear source the MPP sits at half the open-circuit
        voltage (equivalently, matched load ``R_load = R_teg``).
        """
        emf = self.open_circuit_voltage(delta_t_k)
        resistance = self.internal_resistance()
        return MPPPoint(
            voltage_v=emf / 2.0,
            current_a=emf / (2.0 * resistance),
            power_w=emf * emf / (4.0 * resistance),
        )

    def mpp_current(self, delta_t_k: float) -> float:
        """MPP current ``I_MPP = E / (2 R)`` — the quantity INOR balances."""
        return self.open_circuit_voltage(delta_t_k) / (
            2.0 * self.internal_resistance()
        )

    def mpp_power(self, delta_t_k: float) -> float:
        """MPP power ``P_MPP = E^2 / (4 R)``."""
        emf = self.open_circuit_voltage(delta_t_k)
        return emf * emf / (4.0 * self.internal_resistance())

    # ------------------------------------------------------------------
    # Characteristic curves (paper Fig. 1)
    # ------------------------------------------------------------------
    def iv_curve(
        self, delta_t_k: float, n_points: int = 101
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sampled I-V characteristic from short circuit to open circuit.

        Returns
        -------
        (voltage_v, current_a):
            Arrays of ``n_points`` samples; voltage runs from 0 to the
            open-circuit voltage.
        """
        if n_points < 2:
            raise ModelParameterError(f"n_points must be >= 2, got {n_points}")
        emf = self.open_circuit_voltage(delta_t_k)
        resistance = self.internal_resistance()
        voltage = np.linspace(0.0, emf, n_points)
        current = (emf - voltage) / resistance
        return voltage, current

    def pv_curve(
        self, delta_t_k: float, n_points: int = 101
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sampled P-V characteristic over the same span as :meth:`iv_curve`."""
        voltage, current = self.iv_curve(delta_t_k, n_points)
        return voltage, voltage * current


#: Protocol-flavoured alias: the registered ``"single-material"`` model.
SingleMaterialModule = TEGModule
