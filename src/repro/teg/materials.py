"""Thermoelectric couple material model.

The paper's module equation (Eq. 2) uses a constant per-couple Seebeck
coefficient ``alpha`` and a constant module resistance.  Real
bismuth-telluride couples drift mildly with mean junction temperature,
so :class:`CoupleMaterial` supports optional linear temperature
coefficients; the paper-faithful datasheet entries set them to zero and
a "realistic" variant exercises them.

Only quantities needed by the array-level electrical model are kept:
per-couple Seebeck coefficient and per-couple electrical resistance.
Thermal conductance is carried for completeness (it sets the heat drawn
from the radiator) but does not enter the reconfiguration math, exactly
as in the paper.

Beyond bismuth telluride, the mid- and high-temperature couples
(lead-telluride- and skutterudite-class) cover the segmented/hybrid
chains of the exhaust-duct and steel-industry regimes (Gaurav & Pandey,
arXiv 1708.02920 / 1603.02883), where material properties vary along
the hot-to-cold gradient and a single couple model cannot describe the
whole module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelParameterError
from repro.units import require_non_negative, require_positive

#: Reference mean junction temperature (degC) at which nominal couple
#: properties are quoted.
REFERENCE_TEMPERATURE_C = 25.0

#: Relative floor of the linear drift corrections: the clamp keeps a
#: pathological mean temperature from flipping the sign of the EMF or
#: driving the resistance to (or through) zero.
DRIFT_CLAMP_FLOOR = 0.1

#: Nominal bismuth-telluride per-couple properties (~378 uV/K and
#: ~14.6 mOhm).  The single source of truth shared by
#: :data:`BISMUTH_TELLURIDE` and the datasheet catalog — the same
#: figures must never be re-typed elsewhere.
NOMINAL_BISMUTH_SEEBECK_V_PER_K = 3.78e-4
NOMINAL_BISMUTH_RESISTANCE_OHM = 1.46e-2


@dataclass(frozen=True)
class CoupleMaterial:
    """Electrical model of a single thermoelectric couple.

    Parameters
    ----------
    seebeck_v_per_k:
        Per-couple Seebeck coefficient at the reference temperature, in
        volts per kelvin.  A bismuth-telluride couple is typically around
        ``4e-4 V/K`` (two legs of ~200 uV/K each).
    resistance_ohm:
        Per-couple electrical resistance at the reference temperature.
    thermal_conductance_w_per_k:
        Per-couple thermal conductance (hot to cold junction).  Not used
        by the reconfiguration algorithms; retained for energy-balance
        diagnostics.
    seebeck_temp_coeff_per_k:
        Relative change of the Seebeck coefficient per kelvin of mean
        junction temperature above the reference.  Zero reproduces the
        paper's constant-``alpha`` model.
    resistance_temp_coeff_per_k:
        Relative change of couple resistance per kelvin of mean junction
        temperature above the reference.
    """

    seebeck_v_per_k: float
    resistance_ohm: float
    thermal_conductance_w_per_k: float = 0.0
    seebeck_temp_coeff_per_k: float = 0.0
    resistance_temp_coeff_per_k: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.seebeck_v_per_k, "seebeck_v_per_k")
        require_positive(self.resistance_ohm, "resistance_ohm")
        require_non_negative(
            self.thermal_conductance_w_per_k, "thermal_conductance_w_per_k"
        )
        for name in ("seebeck_temp_coeff_per_k", "resistance_temp_coeff_per_k"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ModelParameterError(
                    f"{name} must be a finite number, got {value!r}"
                )

    def seebeck_at(self, mean_temp_c):
        """Per-couple Seebeck coefficient at a mean junction temperature.

        The linear correction is clamped so the coefficient never drops
        below :data:`DRIFT_CLAMP_FLOOR` (10%) of its nominal value,
        keeping pathological inputs from flipping the sign of the EMF.
        Accepts a scalar or an array (vectorised elementwise).
        """
        scale = 1.0 + self.seebeck_temp_coeff_per_k * (
            mean_temp_c - REFERENCE_TEMPERATURE_C
        )
        return self.seebeck_v_per_k * np.maximum(scale, DRIFT_CLAMP_FLOOR)

    def resistance_at(self, mean_temp_c):
        """Per-couple electrical resistance at a mean junction temperature.

        Clamped to :data:`DRIFT_CLAMP_FLOOR` of nominal for the same
        robustness reason as :meth:`seebeck_at`.  Accepts a scalar or an
        array (vectorised elementwise).
        """
        scale = 1.0 + self.resistance_temp_coeff_per_k * (
            mean_temp_c - REFERENCE_TEMPERATURE_C
        )
        return self.resistance_ohm * np.maximum(scale, DRIFT_CLAMP_FLOOR)


#: Nominal bismuth-telluride couple: ~378 uV/K and ~14.6 mOhm per couple.
#: 199 of these reproduce the TGM-199-1.4-0.8 module-level figures used
#: for the paper's Fig. 1 curves (open-circuit voltage ~12.8 V at
#: dT = 170 K, module resistance ~2.9 Ohm at radiator temperatures).
BISMUTH_TELLURIDE = CoupleMaterial(
    seebeck_v_per_k=NOMINAL_BISMUTH_SEEBECK_V_PER_K,
    resistance_ohm=NOMINAL_BISMUTH_RESISTANCE_OHM,
    thermal_conductance_w_per_k=5.0e-3,
)

#: Variant with mild, realistic temperature drift of both parameters.
BISMUTH_TELLURIDE_REALISTIC = CoupleMaterial(
    seebeck_v_per_k=NOMINAL_BISMUTH_SEEBECK_V_PER_K,
    resistance_ohm=NOMINAL_BISMUTH_RESISTANCE_OHM,
    thermal_conductance_w_per_k=5.0e-3,
    seebeck_temp_coeff_per_k=6.0e-4,
    resistance_temp_coeff_per_k=3.5e-3,
)

#: Mid-temperature lead-telluride-class couple: weaker than Bi2Te3 at
#: the reference point but *improving* with junction temperature, so it
#: earns its keep in the middle of a high-gradient chain.
LEAD_TELLURIDE = CoupleMaterial(
    seebeck_v_per_k=3.20e-4,
    resistance_ohm=1.90e-2,
    thermal_conductance_w_per_k=4.0e-3,
    seebeck_temp_coeff_per_k=9.0e-4,
    resistance_temp_coeff_per_k=2.2e-3,
)

#: High-temperature skutterudite-class couple for the hot face of an
#: exhaust or flue duct, where bismuth telluride would be outside its
#: operating window.
SKUTTERUDITE = CoupleMaterial(
    seebeck_v_per_k=2.70e-4,
    resistance_ohm=1.10e-2,
    thermal_conductance_w_per_k=6.0e-3,
    seebeck_temp_coeff_per_k=1.2e-3,
    resistance_temp_coeff_per_k=1.6e-3,
)
