"""Exact Thevenin algebra for the reconfigurable TEG array.

Topology
--------
The switch fabric of the paper's Fig. 4 can connect the physical chain
of ``N`` modules into any *ordered partition into contiguous groups*:
modules inside a group are wired in parallel, and the groups are wired
in series.  A configuration is therefore fully described by the sorted
0-based indices of each group's first module (``starts``), the 0-based
counterpart of the paper's ``C(g_1, ..., g_n)`` encoding.

Because each module is a linear Thevenin source (:mod:`repro.teg.module`),
every reduction here is exact:

* parallel group:  ``R_g = 1 / sum(1/R_i)``, ``E_g = R_g * sum(E_i/R_i)``
* series chain:    ``E = sum(E_g)``, ``R = sum(R_g)``
* array MPP:       ``I* = E / 2R``, ``P* = E^2 / 4R``

All functions are vectorised over numpy arrays; :class:`SegmentThevenin`
adds O(1) Thevenin lookups for arbitrary contiguous segments via prefix
sums, which the DP-style algorithms (EHTR, exact optimum) rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backend import (
    lift_cuts,
    next_cut_map,
    prefix_table,
    segmented_pairwise_sum,
)
from repro.errors import ConfigurationError
from repro.teg.module import MPPPoint


@lru_cache(maxsize=128)
def _index_arange(n: int) -> np.ndarray:
    """A shared, read-only ``arange(n)`` (hot-path index scaffolding)."""
    indices = np.arange(n, dtype=np.int64)
    indices.setflags(write=False)
    return indices


@lru_cache(maxsize=128)
def _window_layout(
    n_min: int, n_max: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read-only ``(counts, offsets, ragged mask)`` of a candidate window.

    Pure functions of ``(n_min, n_max)``, shared across the per-decision
    :func:`partition_multi` calls of a simulation run.
    """
    counts = np.arange(n_min, n_max + 1, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    mask = _index_arange(n_max)[None, :] < counts[:, None]
    for array in (counts, offsets, mask):
        array.setflags(write=False)
    return counts, offsets, mask


@lru_cache(maxsize=128)
def _lift_plan(n_max: int) -> Tuple[Tuple[int, np.ndarray], ...]:
    """Binary-lifting schedule: per bit, the read-only column indices
    (iterate numbers ``j < n_max`` with that bit set)."""
    j_index = _index_arange(n_max)
    plan = []
    bit = 1
    while bit < n_max:
        columns = j_index[(j_index & bit) != 0]
        columns.setflags(write=False)
        plan.append((bit, columns))
        bit <<= 1
    return tuple(plan)

__all__ = [
    "PartitionSet",
    "PartitionStack",
    "SegmentThevenin",
    "array_mpp",
    "array_mpp_multi",
    "array_mpp_multi_stack",
    "array_mpp_rows",
    "array_mpp_rows_multi",
    "array_mpp_rows_multi_stack",
    "array_thevenin",
    "array_thevenin_rows",
    "greedy_balanced_partition",
    "module_operating_points",
    "parallel_reduce",
    "partition_multi",
    "partition_multi_stack",
    "power_at_current",
    "reduce_configuration",
    "validate_starts",
]


def validate_starts(starts: Sequence[int], n_modules: int) -> np.ndarray:
    """Validate and normalise a group-start index vector.

    Parameters
    ----------
    starts:
        0-based indices of each group's first module.  Must begin with
        0, be strictly increasing, and stay below ``n_modules``.
    n_modules:
        Number of modules in the chain.

    Returns
    -------
    numpy.ndarray
        The starts as an ``int64`` array.

    Raises
    ------
    ConfigurationError
        If the vector does not describe a partition of ``0..n_modules-1``
        into contiguous groups.
    """
    arr = np.asarray(starts, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"starts must be a non-empty 1-D sequence, got {starts!r}")
    if n_modules <= 0:
        raise ConfigurationError(f"n_modules must be positive, got {n_modules}")
    if arr[0] != 0:
        raise ConfigurationError(f"first group must start at module 0, got {arr[0]}")
    if np.any(np.diff(arr) <= 0):
        raise ConfigurationError(f"starts must be strictly increasing, got {arr.tolist()}")
    if arr[-1] >= n_modules:
        raise ConfigurationError(
            f"last group start {arr[-1]} out of range for {n_modules} modules"
        )
    return arr


def greedy_balanced_partition(mpp_currents: np.ndarray, n_groups: int) -> np.ndarray:
    """The inner loop of Algorithm 1: one greedy balanced partition.

    Cuts each group where its MPP-current sum is closest to
    ``I_ideal``, ties extending the group, while always leaving at
    least one module for every remaining group.  This is the scalar
    reference the vectorised :func:`partition_multi` kernel is pinned
    bit-identical against (re-exported as
    :func:`repro.core.inor.greedy_balanced_partition`).

    Two float realisations of the same real-arithmetic rule exist, and
    which one runs is part of the bit-parity contract:

    * **Non-negative currents** (the physical radiator case) use the
      canonical *prefix-bracket* form — each cut is located by a
      binary search of the cumulative-current prefix table and the
      bracketing pair compared through their midpoint, the exact
      expression tree :func:`partition_multi` vectorises.  A
      locally-accumulated error walk agrees with it in real
      arithmetic but rounds mathematical ties differently (uniform
      module currents being the practical case), which is why the
      prefix form is canonical on this branch.
    * **Windows containing back-biased modules** (negative currents)
      fall back to the classic accumulation walk, whose
      stop-at-first-error-increase behaviour is the reference there —
      and :func:`partition_multi` delegates to it verbatim.

    Returns
    -------
    numpy.ndarray
        Group start indices (0-based), length ``n_groups``.
    """
    currents = np.asarray(mpp_currents, dtype=float)
    n_modules = currents.size
    if not 1 <= n_groups <= n_modules:
        raise ConfigurationError(
            f"n_groups must lie in [1, {n_modules}], got {n_groups}"
        )
    starts = np.zeros(n_groups, dtype=np.int64)
    if n_groups == 1:
        return starts
    if float(currents.min()) >= 0.0:
        _greedy_prefix_walk(currents, n_groups, starts)
    else:
        _greedy_accumulation_walk(currents, n_groups, starts)
    return starts


def _greedy_prefix_walk(
    currents: np.ndarray, n_groups: int, starts: np.ndarray
) -> None:
    """Canonical prefix-bracket cuts for non-negative currents.

    Scalar twin of :func:`partition_multi`'s vectorised map: identical
    expression tree (same prefix table, same bracket-midpoint tie
    rule, same flat-run extension and clamps), so the two produce the
    same cut indices bit-for-bit.  Runs on plain Python floats and
    :func:`bisect.bisect_right` — IEEE-double arithmetic identical to
    the NumPy elementwise ops, without per-cut array dispatch.
    """
    n_modules = currents.size
    # tolist() yields the same doubles as the float64 prefix table.
    prefix = np.concatenate(([0.0], np.cumsum(currents))).tolist()
    has_flats = float(currents.min()) == 0.0
    ideal = float(currents.sum()) / n_groups
    end = n_modules + 1
    pos = 0
    for j in range(1, n_groups):
        # First prefix entry strictly above the ideal boundary; the
        # bracketing pair decides the cut, ties to the later one (a
        # bound past the table resolves below, like the kernel's +inf
        # padding).
        target = prefix[pos] + ideal
        bound = bisect_right(prefix, target)
        if bound >= end:
            cut = n_modules
        else:
            cut = bound - (prefix[bound] + prefix[bound - 1] > 2.0 * target)
        if cut <= pos:
            cut = pos + 1
        if has_flats:
            # Zero-current flat runs: equal prefix value means equal
            # error, and ties extend — jump to the run's end.
            cut = bisect_right(prefix, prefix[cut]) - 1
        # The cut may go no further than n_modules - (n_groups - j) so
        # later groups stay non-empty.
        max_cut = n_modules - (n_groups - j)
        if cut > max_cut:
            cut = max_cut
        starts[j] = cut
        pos = cut


def _greedy_accumulation_walk(
    currents: np.ndarray, n_groups: int, starts: np.ndarray
) -> None:
    """The classic left-to-right error walk (reference for negatives).

    Accumulates the group sum module by module and stops at the first
    error increase — the only correct reading of the greedy rule when
    negative currents make the cumulative sum non-monotone.
    """
    n_modules = currents.size
    ideal = float(currents.sum()) / n_groups
    pos = 0
    for j in range(1, n_groups):
        max_cut = n_modules - (n_groups - j)
        group_sum = currents[pos]
        cut = pos + 1
        best_err = abs(group_sum - ideal)
        while cut < max_cut:
            extended = group_sum + currents[cut]
            err = abs(extended - ideal)
            if err <= best_err:
                group_sum = extended
                cut += 1
                best_err = err
            else:
                break
        starts[j] = cut
        pos = cut


def _accumulation_walk_multi(
    currents: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """All candidates' accumulation walks, advanced in lockstep.

    The candidate-vectorised twin of :func:`_greedy_accumulation_walk`
    for one current vector; delegates to the row-aware
    :func:`_accumulation_walk_rows` with every lane reading row 0.
    """
    rows = np.ascontiguousarray(currents, dtype=float)[None, :]
    return _accumulation_walk_rows(
        rows, np.zeros(counts.size, dtype=np.int64), counts
    )


def _accumulation_walk_rows(
    currents_rows: np.ndarray, row_of: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Lockstep accumulation walks across many current vectors at once.

    Every lane is one ``(current vector, group count)`` candidate:
    lane ``k`` walks row ``row_of[k]`` of ``currents_rows`` building a
    ``counts[k]``-group partition.  Each lane keeps its own
    ``(position, cut, group sum, best error)`` state, and each
    iteration either extends the open group by one module or closes it
    and re-seeds — exactly the scalar walk's per-candidate operation
    sequence, so each lane's IEEE arithmetic (and therefore every cut
    index) is bit-identical to running
    :func:`_greedy_accumulation_walk` on its row.  The Python loop
    count collapses from O(sum over lanes of walk steps) to O(longest
    single walk): lanes of *different* rows — e.g. every back-biased
    case of a stacked grid — advance together.

    Returns the dense ``(n_lanes, max(counts))`` cut matrix (column 0
    is the mandatory leading zero; columns at or beyond a lane's count
    are unused).
    """
    n_modules = currents_rows.shape[1]
    n_lanes = counts.size
    flat = currents_rows.reshape(-1)
    base = row_of * n_modules
    cuts = np.zeros((n_lanes, int(counts.max())), dtype=np.int64)
    # Contiguous-row pairwise sums match each lane's float(row.sum()).
    ideals = currents_rows.sum(axis=1)[row_of] / counts
    # Lane state: next start slot to fill, last cut (group origin), the
    # probing cut, the open group's sum and its best error so far.
    slot = np.ones(n_lanes, dtype=np.int64)
    pos = np.zeros(n_lanes, dtype=np.int64)
    cut = np.ones(n_lanes, dtype=np.int64)
    group_sum = flat[base]
    best_err = np.abs(group_sum - ideals)
    active = slot < counts
    while active.any():
        live = np.flatnonzero(active)
        max_cut = n_modules - (counts[live] - slot[live])
        extendable = cut[live] < max_cut
        probing = live[extendable]
        extended = group_sum[probing] + flat[base[probing] + cut[probing]]
        err = np.abs(extended - ideals[probing])
        better = err <= best_err[probing]
        grow = probing[better]
        group_sum[grow] = extended[better]
        best_err[grow] = err[better]
        cut[grow] += 1
        # A lane closes its group when the error rose (the walk's
        # stop-at-first-increase) or the tail clamp binds.
        close = np.concatenate((live[~extendable], probing[~better]))
        if close.size:
            cuts[close, slot[close]] = cut[close]
            pos[close] = cut[close]
            slot[close] += 1
            active[close] = slot[close] < counts[close]
            reseed = close[active[close]]
            group_sum[reseed] = flat[base[reseed] + pos[reseed]]
            cut[reseed] = pos[reseed] + 1
            best_err[reseed] = np.abs(group_sum[reseed] - ideals[reseed])
    return cuts


@dataclass(frozen=True)
class PartitionSet:
    """A ragged set of candidate partitions in flat (concatenated) form.

    The native output layout of :func:`partition_multi` and the native
    input layout of :func:`array_mpp_multi`: every candidate's start
    indices live back-to-back in ``cat`` with ``offsets`` delimiting
    them, so the batched kernels consume the set without any
    per-candidate Python.  Behaves as a read-only sequence of start
    vectors (``len``, indexing and iteration return int64 views).

    Attributes
    ----------
    cat:
        Concatenated start indices of all candidates (``int64``).
    offsets:
        Candidate boundaries into ``cat``, length ``n_candidates + 1``.
    n_modules:
        Chain length every candidate partitions.
    """

    cat: np.ndarray
    offsets: np.ndarray
    n_modules: int

    def __len__(self) -> int:
        return self.offsets.size - 1

    def __getitem__(self, index: int) -> np.ndarray:
        # Normalise negative indices explicitly: feeding a raw -1 into
        # the offsets pair would silently yield an empty slice.
        k = int(index)
        n_candidates = self.offsets.size - 1
        if k < 0:
            k += n_candidates
        if not 0 <= k < n_candidates:
            raise IndexError(
                f"candidate index {index} out of range for "
                f"{n_candidates} candidates"
            )
        lo, hi = self.offsets[k], self.offsets[k + 1]
        return self.cat[lo:hi]

    def __iter__(self):
        for k in range(len(self)):
            yield self[k]

    @property
    def sizes(self) -> np.ndarray:
        """Group count of each candidate."""
        return np.diff(self.offsets)


def partition_multi(
    mpp_currents: np.ndarray, n_min: int, n_max: int
) -> PartitionSet:
    """Greedy balanced partitions for *every* group count in a window.

    The candidate-batched sibling of :func:`greedy_balanced_partition`:
    builds the Algorithm-1 partition for every ``n`` in
    ``[n_min, n_max]`` from one cumulative-current prefix table,
    replacing O((n_max - n_min + 1) * N) Python walk steps with a
    handful of vectorised passes:

    1. One 2-D ``searchsorted`` against the prefix sums resolves, for
       every candidate and every possible group-start position at
       once, where the *next* cut would land — the two prefix entries
       bracketing ``P[pos] + I_ideal`` are compared with the walk's
       tie rule (extend on equal error, and on through zero-current
       flat runs), yielding each candidate's pure next-cut map over
       positions ``0..N``.
    2. Binary lifting composes that map with itself O(log n_max)
       times, producing every candidate's j-th cut for all ``j``
       simultaneously — the sequential walk recursion collapses into
       gather operations.
    3. The non-empty-tail constraint is applied as one vectorised
       clamp ``min(cut_j, N - n + j)``: the next-cut map is monotone
       in the start position, so clamping after iteration is exactly
       equivalent to the walk's per-step clamp (once the clamp binds,
       every later cut is provably the forced consecutive index).

    Cut indices are bit-identical to running the scalar walk per
    candidate (pinned in the parity suite).  The cumulative-prefix
    shortcut requires the group sums to grow monotonically, i.e.
    non-negative MPP currents; windows containing back-biased modules
    (negative EMF) fall back to the scalar walk per candidate, whose
    first-local-minimum semantics are the reference.

    Returns
    -------
    PartitionSet
        Candidates in ascending group-count order (``n_min`` first).
    """
    currents = np.asarray(mpp_currents, dtype=float)
    n_modules = currents.size
    if currents.ndim != 1 or n_modules == 0:
        raise ConfigurationError(
            f"mpp_currents must be a non-empty 1-D array, got shape "
            f"{currents.shape}"
        )
    n_min = int(n_min)
    n_max = int(n_max)
    if not 1 <= n_min <= n_max <= n_modules:
        raise ConfigurationError(
            f"invalid group-count window [{n_min}, {n_max}] for "
            f"{n_modules} modules"
        )
    counts, offsets, ragged_mask = _window_layout(n_min, n_max)

    lowest = float(currents.min())
    if not lowest >= 0.0:  # negative or NaN
        # Non-monotone cumulative current (back-biased modules): the
        # walk's stop-at-first-error-increase rule is the reference
        # behaviour and cannot be expressed as a prefix search — but
        # all candidates' walks advance together in lockstep lanes.
        cuts = _accumulation_walk_multi(currents, counts)
        return PartitionSet(
            cat=cuts[ragged_mask], offsets=offsets, n_modules=n_modules
        )

    # prefix[c] = sum(currents[:c]); the walk's group sum for a cut at
    # ``c`` with the group starting at ``pos`` is prefix[c] - prefix[pos].
    prefix = np.concatenate(([0.0], np.cumsum(currents)))
    # ndarray.sum matches the scalar walk's ideal exactly (the prefix
    # tail would not: cumsum accumulates sequentially, sum pairwise).
    ideals = float(currents.sum()) / counts
    n_candidates = counts.size

    # --- 1. the pure next-cut map, all candidates x all positions ----
    # targets[k, c] = P[c] + I_ideal_k; bound = first prefix entry
    # strictly above it, so (bound-1, bound) bracket the target.
    targets = prefix[None, :] + ideals[:, None]
    bound = prefix.searchsorted(targets, side="right")
    # Walk tie rule via the bracket midpoint: the lower cut wins only
    # on strictly smaller error, i.e. P[bound] + P[bound-1] > 2*target
    # (prefix is padded with +inf so bound = N+1 resolves below).
    padded = np.concatenate((prefix, [np.inf]))
    nxt = bound - (padded[bound] + prefix[bound - 1] > 2.0 * targets)
    # Every group takes at least one module, and the map saturates at
    # N (an absorbing state the final tail clamp resolves).
    np.maximum(nxt, _index_arange(n_modules + 2)[None, 1:], out=nxt)
    np.minimum(nxt, n_modules, out=nxt)
    if lowest == 0.0:
        # Zero-current flat runs: equal prefix value means equal error,
        # and the walk extends through ties — jump to the run's end.
        nxt = prefix.searchsorted(prefix[nxt], side="right") - 1

    # --- 2. all walk iterates by binary lifting ----------------------
    # cuts[k, j] = nxt_k^j(0); column j is assembled from the powers
    # nxt^(2^b) selected by j's bits (composition of powers commutes).
    # Gathers run on flattened tables with per-candidate row offsets —
    # a direct C-level take, unlike the take_along_axis wrapper.
    cuts = np.zeros((n_candidates, n_max), dtype=np.int64)
    row_base = (_index_arange(n_candidates) * (n_modules + 1))[:, None]
    doubling = nxt  # (n_candidates, N + 1), C-contiguous
    flat = doubling.reshape(-1)
    lift_plan = _lift_plan(n_max)
    for step, (bit, columns) in enumerate(lift_plan):
        cuts[:, columns] = flat[cuts[:, columns] + row_base]
        if step + 1 < len(lift_plan):
            doubling = flat[doubling + row_base]
            flat = doubling.reshape(-1)

    # --- 3. tail clamp + ragged extraction ---------------------------
    # min(cut_j, N - n + j) keeps every remaining group non-empty; the
    # map's monotonicity makes this equivalent to clamping per step.
    np.minimum(
        cuts,
        (n_modules - counts)[:, None] + _index_arange(n_max)[None, :],
        out=cuts,
    )
    cat = cuts[ragged_mask]
    return PartitionSet(cat=cat, offsets=offsets, n_modules=n_modules)


@dataclass(frozen=True)
class PartitionStack:
    """Candidate partitions of *many grid cases*, flat-concatenated.

    The grid-stacked sibling of :class:`PartitionSet`: every candidate
    of every case lives back-to-back in one flat layout, so the
    stacked kernels (:func:`partition_multi_stack` /
    :func:`array_mpp_multi_stack`) build and score a whole homogeneous
    case grid with no per-case Python.

    Attributes
    ----------
    cat:
        Concatenated start indices of all candidates of all cases.
    offsets:
        Candidate boundaries into ``cat``, length ``n_candidates + 1``.
    case_of_candidate:
        Owning case index of each candidate (non-decreasing).
    case_offsets:
        Candidate-index boundaries per case, length ``n_cases + 1``.
    n_modules:
        Chain length shared by every case.
    """

    cat: np.ndarray
    offsets: np.ndarray
    case_of_candidate: np.ndarray
    case_offsets: np.ndarray
    n_modules: int

    @property
    def n_cases(self) -> int:
        """Number of stacked cases."""
        return self.case_offsets.size - 1

    def __len__(self) -> int:
        return self.offsets.size - 1

    def case(self, index: int) -> PartitionSet:
        """One case's candidates as a standalone :class:`PartitionSet`."""
        k = int(index)
        if k < 0:
            k += self.n_cases
        if not 0 <= k < self.n_cases:
            raise IndexError(
                f"case index {index} out of range for {self.n_cases} cases"
            )
        lo, hi = self.case_offsets[k], self.case_offsets[k + 1]
        flat_lo, flat_hi = self.offsets[lo], self.offsets[hi]
        return PartitionSet(
            cat=self.cat[flat_lo:flat_hi],
            offsets=self.offsets[lo : hi + 1] - flat_lo,
            n_modules=self.n_modules,
        )


def partition_multi_stack(
    mpp_current_rows: np.ndarray,
    n_min,
    n_max,
    backend: Optional[str] = None,
) -> PartitionStack:
    """Greedy balanced partitions for every case of a stacked grid.

    The grid-stacked sibling of :func:`partition_multi`:
    ``mpp_current_rows`` is a ``(C, N)`` matrix of per-case MPP
    currents and ``n_min`` / ``n_max`` per-case group-count windows
    (scalars broadcast), and the prefix-bracket cut map, flat-run
    extension, binary lifting and tail clamp all run across every
    candidate of every case at once — one row-wise binary search
    replaces the per-case ``searchsorted``.  Cut indices are
    **bit-identical** per case to ``partition_multi(rows[c],
    n_min[c], n_max[c])`` (pinned in the parity suite): the stacked map
    evaluates the same expression tree on the same doubles, merely
    batched over a leading case axis.  Cases containing back-biased
    modules (negative currents) take the accumulation-walk reference
    path, like :func:`partition_multi` — but all such cases' lanes
    advance through one row-aware lockstep walk together.

    The three array stages of the build — prefix construction, the
    next-cut map and the lifting iteration — execute through the
    :mod:`repro.backend` entry points (:func:`repro.backend.prefix_table`
    / :func:`~repro.backend.next_cut_map` /
    :func:`~repro.backend.lift_cuts`); ``backend`` selects the
    implementation and cannot change the cuts (every backend is
    parity-probed bitwise against the NumPy reference before use).
    """
    rows = np.asarray(mpp_current_rows, dtype=float)
    if rows.ndim != 2 or rows.size == 0:
        raise ConfigurationError(
            f"mpp_current_rows must be a non-empty (C, N) matrix, got "
            f"shape {rows.shape}"
        )
    n_cases, n_modules = rows.shape
    n_mins = np.broadcast_to(
        np.asarray(n_min, dtype=np.int64), (n_cases,)
    ).copy()
    n_maxs = np.broadcast_to(
        np.asarray(n_max, dtype=np.int64), (n_cases,)
    ).copy()
    if np.any(n_mins < 1) or np.any(n_maxs > n_modules) or np.any(
        n_maxs < n_mins
    ):
        raise ConfigurationError(
            f"invalid group-count windows for {n_modules} modules: "
            f"n_min={n_mins.tolist()[:8]}, n_max={n_maxs.tolist()[:8]}"
        )

    widths = n_maxs - n_mins + 1
    case_offsets = np.concatenate(([0], np.cumsum(widths)))
    n_candidates = int(case_offsets[-1])
    case_of_cand = np.repeat(_index_arange(n_cases), widths)
    counts_all = n_mins.repeat(widths) + (
        _index_arange(n_candidates) - case_offsets[:-1].repeat(widths)
    )
    offsets_all = np.concatenate(([0], np.cumsum(counts_all)))
    n_lift = int(counts_all.max())
    cuts = np.zeros((n_candidates, n_lift), dtype=np.int64)

    lowest_rows = rows.min(axis=1)
    monotone_rows = lowest_rows >= 0.0  # False for negatives and NaN
    pos_sel = np.flatnonzero(monotone_rows[case_of_cand])

    if pos_sel.size:
        # The three backend stages: prefix construction, the next-cut
        # map (bracketing search + tie rule + flat-run extension) and
        # the lifting iteration.  ndarray.sum feeds the ideals — the
        # prefix tail would not match the scalar walk (cumsum
        # accumulates sequentially, sum pairwise).
        prefix_rows = prefix_table(rows, backend=backend)
        sums = rows.sum(axis=1)
        row_of = case_of_cand[pos_sel]
        ideals = sums[row_of] / counts_all[pos_sel]
        nxt = next_cut_map(
            prefix_rows, row_of, ideals, lowest_rows == 0.0, backend=backend
        )
        cuts[pos_sel] = lift_cuts(
            nxt, counts_all[pos_sel], n_lift, backend=backend
        )

    neg_sel = np.flatnonzero(~monotone_rows[case_of_cand])
    if neg_sel.size:
        # Back-biased cases: one lockstep walk advances every affected
        # candidate of every such case together (the walk lanes are
        # row-aware, so no per-case Python here either).
        walk = _accumulation_walk_rows(
            rows, case_of_cand[neg_sel], counts_all[neg_sel]
        )
        cuts[neg_sel, : walk.shape[1]] = walk

    ragged_mask = _index_arange(n_lift)[None, :] < counts_all[:, None]
    return PartitionStack(
        cat=cuts[ragged_mask],
        offsets=offsets_all,
        case_of_candidate=case_of_cand,
        case_offsets=case_offsets,
        n_modules=n_modules,
    )


def array_mpp_multi_stack(
    emf_rows: np.ndarray,
    resistance: np.ndarray,
    stack: PartitionStack,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact MPPs of every candidate of a stacked case grid.

    The grid-stacked sibling of :func:`array_mpp_multi`: ``emf_rows``
    holds one EMF vector per case and ``resistance`` the chain's shared
    resistance vector (the homogeneous-grid precondition: all cases
    share one module model).  Every candidate's parallel-group
    reduction runs as one ``np.add.reduceat`` over a per-candidate
    gathered module axis and the series sums through one segmented
    pairwise tree — **bit-identical** per case to calling
    :func:`array_mpp_multi` with that case's EMF vector and candidate
    set (same doubles, same summation order; pinned in the parity
    suite).  Candidate sets are trusted by construction, like
    ``validate=False``.

    Returns ``(power_w, voltage_v, current_a)`` with one entry per
    stacked candidate, in ``stack.offsets`` order.
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    if emf_rows.ndim != 2 or emf_rows.shape[0] != stack.n_cases:
        raise ConfigurationError(
            f"emf_rows must be ({stack.n_cases}, {stack.n_modules}), "
            f"got shape {emf_rows.shape}"
        )
    n_modules = emf_rows.shape[1]
    if n_modules != stack.n_modules or resistance.shape != (n_modules,):
        raise ConfigurationError(
            f"partition stack covers {stack.n_modules} modules, "
            f"parameters {n_modules} / {resistance.shape}"
        )
    n_candidates = len(stack)
    if n_candidates == 0:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()

    conductance = 1.0 / resistance
    weighted_rows = emf_rows * conductance
    big = np.empty((2, n_candidates * n_modules))
    big[0] = np.tile(conductance, n_candidates)
    big[1] = weighted_rows[stack.case_of_candidate].reshape(-1)
    sizes = np.diff(stack.offsets)
    idx = stack.cat + np.repeat(_index_arange(n_candidates) * n_modules, sizes)
    groups = np.add.reduceat(big, idx, axis=1)
    pair = np.empty_like(groups)
    pair[1] = 1.0 / groups[0]
    pair[0] = groups[1] * pair[1]
    totals = segmented_pairwise_sum(pair, stack.offsets, backend=backend)
    e_total = totals[0]
    r_total = totals[1]
    power = e_total * e_total / (4.0 * r_total)
    voltage = e_total / 2.0
    current = e_total / (2.0 * r_total)
    return power, voltage, current


def parallel_reduce(
    emf: np.ndarray, resistance: np.ndarray
) -> Tuple[float, float]:
    """Thevenin equivalent of one parallel group of modules.

    Returns ``(E_g, R_g)`` where ``R_g = 1/sum(1/R_i)`` and
    ``E_g = R_g * sum(E_i / R_i)`` (conductance-weighted mean EMF).
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    conductance = 1.0 / resistance
    total_conductance = float(conductance.sum())
    r_group = 1.0 / total_conductance
    e_group = r_group * float((emf * conductance).sum())
    return e_group, r_group


def reduce_configuration(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group Thevenin parameters for a configuration.

    Returns
    -------
    (e_groups, r_groups):
        Arrays of length ``len(starts)`` with each group's equivalent
        EMF and resistance, in chain order.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, emf.size)
    conductance = 1.0 / resistance
    group_conductance = np.add.reduceat(conductance, idx)
    group_weighted_emf = np.add.reduceat(emf * conductance, idx)
    r_groups = 1.0 / group_conductance
    e_groups = group_weighted_emf * r_groups
    return e_groups, r_groups


def array_thevenin(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[float, float]:
    """Whole-array Thevenin equivalent ``(E_total, R_total)``."""
    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    return float(e_groups.sum()), float(r_groups.sum())


def array_mpp(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> MPPPoint:
    """Maximum power point of the configured array.

    The array is itself a linear Thevenin source, so the MPP is exact:
    ``I* = E/2R``, ``V* = E/2``, ``P* = E^2/4R``.
    """
    e_total, r_total = array_thevenin(emf, resistance, starts)
    return MPPPoint(
        voltage_v=e_total / 2.0,
        current_a=e_total / (2.0 * r_total),
        power_w=e_total * e_total / (4.0 * r_total),
    )


def array_thevenin_rows(
    emf_rows: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, float]:
    """Whole-array Thevenin of many EMF rows under one configuration.

    The row-batched sibling of :func:`array_thevenin` for the
    constant-resistance module model: ``emf_rows`` is an ``(S, N)``
    matrix of per-module EMFs (one row per time sample / forecast
    step), ``resistance`` the shared ``(N,)`` resistance vector.
    Returns ``(E_total per row, R_total)`` — the configuration fixes
    ``R_total`` across rows.  Elementwise the operations mirror the
    scalar path, so batched sweeps reproduce per-sample results.
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    conductance = 1.0 / np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, conductance.size)
    group_conductance = np.add.reduceat(conductance, idx)
    r_groups = 1.0 / group_conductance
    r_total = float(r_groups.sum())
    weighted = emf_rows * conductance
    group_weighted = np.add.reduceat(weighted, idx, axis=1)
    e_rows = (group_weighted * r_groups).sum(axis=1)
    return e_rows, r_total


def array_mpp_rows(
    emf_rows: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact MPP ``(power, voltage)`` rows for a batched configuration.

    Row-batched :func:`array_mpp`: ``P* = E^2/4R`` and ``V* = E/2``
    for every row of ``emf_rows`` at once — the hot path of the batch
    simulation engine and DNOR's horizon scoring.
    """
    e_rows, r_total = array_thevenin_rows(emf_rows, resistance, starts)
    power = e_rows * e_rows / (4.0 * r_total)
    voltage = e_rows / 2.0
    return power, voltage


def array_mpp_rows_multi(
    emf_rows: np.ndarray,
    resistance: np.ndarray,
    starts_list: Sequence[Sequence[int]],
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact MPP rows of *many configurations* over stacked EMF rows.

    The configuration-batched sibling of :func:`array_mpp_rows`: every
    configuration in ``starts_list`` is evaluated against the same
    ``(S, N)`` EMF matrix in one pass — all configurations' parallel
    groups reduce through a single ``np.add.reduceat`` over a tiled
    module axis, exactly like :func:`array_mpp_multi` does for one
    temperature state.  This is the hot path of DNOR's epoch planning,
    which scores the old configuration and every proposal over the
    same forecast horizon.

    Returns ``(power_w, voltage_v)`` arrays of shape
    ``(n_configs, S)``, **bit-identical** to calling
    :func:`array_mpp_rows` once per configuration: the tiled reduceat
    preserves each group's in-segment accumulation order and the
    per-configuration series sums run through the segmented pairwise
    tree of :func:`repro.backend.segmented_pairwise_sum`, which
    reproduces the single-configuration path's ``ndarray.sum``
    summation order exactly (``backend`` selects the executing array
    backend; results are bit-identical across backends).
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    conductance = 1.0 / np.asarray(resistance, dtype=float)
    n_modules = conductance.size
    candidates = [
        validate_starts(starts, n_modules) for starts in starts_list
    ]
    n_configs = len(candidates)
    if n_configs == 0:
        empty = np.empty((0, emf_rows.shape[0]))
        return empty, empty.copy()
    sizes = np.array([starts.size for starts in candidates])
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    cat = np.concatenate(candidates) if n_configs > 1 else candidates[0]
    idx = cat + np.repeat(np.arange(n_configs) * n_modules, sizes)

    weighted = emf_rows * conductance
    if n_configs == 1:
        # Single configuration (DNOR's keep-or-switch score every
        # epoch): re-tiling the full (S, N) EMF matrix would be a pure
        # copy — reduceat reads the originals directly.
        tiled_conductance = conductance
        tiled_weighted = weighted
    else:
        tiled_conductance = np.tile(conductance, n_configs)
        tiled_weighted = np.tile(weighted, (1, n_configs))
    group_conductance = np.add.reduceat(tiled_conductance, idx)
    r_groups = 1.0 / group_conductance
    group_weighted = np.add.reduceat(tiled_weighted, idx, axis=1)
    contrib = group_weighted * r_groups

    # Per-configuration series sums: the segmented pairwise tree
    # reproduces contiguous-slice ndarray.sum bitwise, with no Python
    # loop over configurations.
    e_rows = segmented_pairwise_sum(contrib, offsets, backend=backend)
    r_totals = segmented_pairwise_sum(r_groups, offsets, backend=backend)
    power = np.ascontiguousarray((e_rows * e_rows / (4.0 * r_totals)).T)
    voltage = np.ascontiguousarray((e_rows / 2.0).T)
    return power, voltage


def array_mpp_rows_multi_stack(
    emf_stack: np.ndarray,
    resistance: np.ndarray,
    starts_list: Sequence[Sequence[int]],
    case_of_config: Sequence[int],
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact MPP rows of many ``(case, configuration)`` pairs at once.

    The case-stacked sibling of :func:`array_mpp_rows_multi` for fused
    decision passes over a whole case grid: ``emf_stack`` is a
    ``(K, S, N)`` stack of per-case EMF matrices (all cases sharing the
    same ``(N,)`` ``resistance`` and horizon length ``S``),
    ``starts_list`` holds one configuration per evaluation lane and
    ``case_of_config[p]`` names the case whose EMF rows lane ``p``
    scores.  This is the engine of DNOR's grid-stacked epoch kernel,
    which scores every case's (current, candidate) pair over its own
    forecast horizon in one pass.

    Returns ``(power_w, voltage_v)`` of shape ``(P, S)``,
    **bit-identical** per lane to
    ``array_mpp_rows(emf_stack[case_of_config[p]], resistance,
    starts_list[p])`` — and therefore to grouping the lanes by case and
    calling :func:`array_mpp_rows_multi` per case: the stacked reduceat
    preserves each group's in-segment accumulation order (lane ``p``'s
    last group ends exactly where lane ``p + 1``'s block begins, the
    same boundary as the per-case array end) and the per-lane series
    sums run through the same segmented pairwise tree.
    """
    emf_stack = np.asarray(emf_stack, dtype=float)
    conductance = 1.0 / np.asarray(resistance, dtype=float)
    n_modules = conductance.size
    if emf_stack.ndim != 3 or emf_stack.shape[2] != n_modules:
        raise ConfigurationError(
            f"emf_stack must be a (K, S, {n_modules}) stack, got shape "
            f"{emf_stack.shape}"
        )
    case_of_config = np.asarray(case_of_config, dtype=np.int64)
    candidates = [
        validate_starts(starts, n_modules) for starts in starts_list
    ]
    n_configs = len(candidates)
    if case_of_config.shape != (n_configs,):
        raise ConfigurationError(
            f"case_of_config must map every configuration to a case, got "
            f"{case_of_config.shape} for {n_configs} configurations"
        )
    if n_configs == 0:
        empty = np.empty((0, emf_stack.shape[1]))
        return empty, empty.copy()
    if case_of_config.min() < 0 or case_of_config.max() >= emf_stack.shape[0]:
        raise ConfigurationError(
            f"case_of_config must index the {emf_stack.shape[0]}-case "
            f"stack, got range [{case_of_config.min()}, "
            f"{case_of_config.max()}]"
        )
    sizes = np.array([starts.size for starts in candidates])
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    cat = np.concatenate(candidates) if n_configs > 1 else candidates[0]
    idx = cat + np.repeat(np.arange(n_configs) * n_modules, sizes)

    # Lane p's N-column block holds its case's weighted EMF rows — the
    # same doubles the per-case kernel multiplies, gathered instead of
    # tiled.  reshape(-1, P*N) copies the (S, P, N) transpose into the
    # contiguous layout reduceat wants.
    weighted = emf_stack * conductance
    n_samples = emf_stack.shape[1]
    tiled_weighted = weighted[case_of_config].transpose(1, 0, 2).reshape(
        n_samples, n_configs * n_modules
    )
    tiled_conductance = np.tile(conductance, n_configs)
    group_conductance = np.add.reduceat(tiled_conductance, idx)
    r_groups = 1.0 / group_conductance
    group_weighted = np.add.reduceat(tiled_weighted, idx, axis=1)
    contrib = group_weighted * r_groups

    e_rows = segmented_pairwise_sum(contrib, offsets, backend=backend)
    r_totals = segmented_pairwise_sum(r_groups, offsets, backend=backend)
    power = np.ascontiguousarray((e_rows * e_rows / (4.0 * r_totals)).T)
    voltage = np.ascontiguousarray((e_rows / 2.0).T)
    return power, voltage


def array_mpp_multi(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts_list: Sequence[Sequence[int]],
    validate: bool = True,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact MPPs of *many configurations* at one temperature state.

    The configuration-batched sibling of :func:`array_mpp` (and the
    transpose of :func:`array_mpp_rows`, which batches time samples
    under one configuration): evaluates every candidate partition in
    ``starts_list`` against the same per-module ``(emf, resistance)``
    vectors in one NumPy pass — the hot path of INOR's
    ``[n_min, n_max]`` candidate sweep.

    Returns ``(power_w, voltage_v, current_a)`` arrays with one entry
    per candidate, **bit-identical** to calling :func:`array_mpp` per
    candidate: all candidates' parallel-group reductions run as one
    ``np.add.reduceat`` over a tiled module axis (same elements, same
    summation order as the per-candidate reduceat), and the per-
    candidate series sums run through
    :func:`repro.backend.segmented_pairwise_sum`, which reproduces the
    scalar path's ``ndarray.sum`` pairwise order bitwise (``backend``
    selects the executing array backend).  Algorithms may therefore
    swap the scalar loop for this kernel without perturbing a single
    decision.

    ``validate=False`` skips the candidate-set validation sweep for
    callers that construct partitions correct by construction (INOR's
    greedy walk); invalid starts then produce undefined results
    instead of :class:`~repro.errors.ConfigurationError`.

    ``starts_list`` may also be a :class:`PartitionSet` (the native
    output of :func:`partition_multi`), whose flat layout is consumed
    directly — the build + score pipeline then runs with no
    per-candidate Python at all.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    n_modules = emf.size
    if isinstance(starts_list, PartitionSet):
        if starts_list.n_modules != n_modules:
            raise ConfigurationError(
                f"partition set covers {starts_list.n_modules} modules, "
                f"parameters {n_modules}"
            )
        cat = starts_list.cat
        offsets = starts_list.offsets
        sizes = starts_list.sizes
        n_candidates = offsets.size - 1
    else:
        candidates = [
            np.asarray(starts, dtype=np.int64) for starts in starts_list
        ]
        n_candidates = len(candidates)
        if n_candidates:
            # Concatenate every candidate's group starts, offset onto a
            # tiled module axis, so one reduceat computes all groups of
            # all candidates (each candidate's last group correctly ends
            # at the next candidate's offset).
            if any(
                starts.ndim != 1 or starts.size == 0 for starts in candidates
            ):
                for starts in candidates:  # delegate for the precise error
                    validate_starts(starts, n_modules)
            sizes = np.array([starts.size for starts in candidates])
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            cat = (
                np.concatenate(candidates)
                if n_candidates > 1
                else candidates[0].reshape(-1)
            )
    if n_candidates == 0:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()

    # Validate the whole candidate set in one vectorised sweep; only on
    # failure fall back to the per-candidate path for its precise error.
    # Masking the candidate boundaries out of the diff plus the
    # first-start-is-zero check implies every start is in-range and
    # non-negative within its candidate.
    if validate:
        diffs = np.diff(cat)
        boundary = offsets[1:-1] - 1
        if boundary.size:
            diffs[boundary] = 1
        valid = (
            not cat[offsets[:-1]].any()
            and not np.any(cat >= n_modules)
            and not np.any(diffs <= 0)
        )
        if not valid:
            for starts in (
                starts_list
                if isinstance(starts_list, PartitionSet)
                else candidates
            ):
                validate_starts(starts, n_modules)
            raise ConfigurationError(
                "inconsistent candidate configuration set"
            )

    idx = cat + np.repeat(np.arange(n_candidates) * n_modules, sizes)
    conductance = 1.0 / resistance
    base = np.empty((2, n_modules))
    base[0] = conductance
    base[1] = emf * conductance
    # groups rows: [0] = summed conductance 1/R_g, [1] = conductance-
    # weighted EMF per group (reduceat's strictly sequential in-segment
    # accumulation matches the per-candidate scalar reduceat bitwise).
    tiled = base if n_candidates == 1 else np.tile(base, (1, n_candidates))
    groups = np.add.reduceat(tiled, idx, axis=1)
    # pair rows: [0] = E_g, [1] = R_g per group.
    pair = np.empty_like(groups)
    pair[1] = 1.0 / groups[0]
    pair[0] = groups[1] * pair[1]

    # Per-candidate series sums: the segmented pairwise tree matches
    # the scalar path's e_groups.sum() summation order bitwise
    # (np.add.reduceat's sequential accumulation would not), with no
    # Python loop over candidates.
    totals = segmented_pairwise_sum(pair, offsets, backend=backend)
    e_total = totals[0]
    r_total = totals[1]
    power = e_total * e_total / (4.0 * r_total)
    voltage = e_total / 2.0
    current = e_total / (2.0 * r_total)
    return power, voltage, current


def power_at_current(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    current_a: float,
) -> float:
    """Array output power when the charger draws ``current_a``.

    Group voltages are ``V_g = E_g - I * R_g``; the array voltage is
    their sum and may include negative terms when a group is driven
    past its short-circuit current (no bypass diodes are modelled,
    matching the paper's fabric).
    """
    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    voltage = float((e_groups - current_a * r_groups).sum())
    return voltage * current_a


def module_operating_points(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    current_a: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-module operating points at a given array current.

    Returns
    -------
    (module_voltage, module_current, module_power):
        Arrays of length ``N``.  Every module in a group shares the
        group voltage; its branch current is ``(E_i - V_g)/R_i`` and may
        be negative for a weak module back-driven by its neighbours —
        the mismatch loss the reconfiguration algorithms fight.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, emf.size)
    e_groups, r_groups = reduce_configuration(emf, resistance, idx)
    group_voltage = e_groups - current_a * r_groups
    # Broadcast each group's voltage back onto its member modules.
    group_of_module = np.zeros(emf.size, dtype=np.int64)
    group_of_module[idx[1:]] = 1
    group_of_module = np.cumsum(group_of_module)
    module_voltage = group_voltage[group_of_module]
    module_current = (emf - module_voltage) / resistance
    module_power = module_voltage * module_current
    return module_voltage, module_current, module_power


@dataclass(frozen=True)
class SegmentThevenin:
    """O(1) Thevenin lookups for contiguous module segments.

    Precomputes prefix sums of conductance and conductance-weighted EMF
    so that any segment ``[lo, hi)`` reduces in constant time.  This is
    the workhorse of the DP-based algorithms (EHTR reconstruction and
    the exact optimum), which evaluate O(N^2) candidate segments.
    """

    prefix_conductance: np.ndarray
    prefix_weighted_emf: np.ndarray

    @classmethod
    def from_modules(
        cls, emf: np.ndarray, resistance: np.ndarray
    ) -> "SegmentThevenin":
        """Build the prefix tables for a module chain."""
        emf = np.asarray(emf, dtype=float)
        resistance = np.asarray(resistance, dtype=float)
        conductance = 1.0 / resistance
        prefix_g = np.concatenate(([0.0], np.cumsum(conductance)))
        prefix_eg = np.concatenate(([0.0], np.cumsum(emf * conductance)))
        return cls(prefix_conductance=prefix_g, prefix_weighted_emf=prefix_eg)

    @property
    def n_modules(self) -> int:
        """Number of modules covered by the tables."""
        return self.prefix_conductance.size - 1

    def segment(self, lo: int, hi: int) -> Tuple[float, float]:
        """Thevenin ``(E, R)`` of the parallel group ``[lo, hi)``.

        Raises
        ------
        ConfigurationError
            If the segment is empty or out of range.
        """
        if not 0 <= lo < hi <= self.n_modules:
            raise ConfigurationError(
                f"segment [{lo}, {hi}) invalid for {self.n_modules} modules"
            )
        conductance = self.prefix_conductance[hi] - self.prefix_conductance[lo]
        weighted = self.prefix_weighted_emf[hi] - self.prefix_weighted_emf[lo]
        r_group = 1.0 / conductance
        return weighted * r_group, r_group

    def segment_mpp_current_sum(self, lo: int, hi: int) -> float:
        """Sum of member MPP currents over ``[lo, hi)``.

        For the linear module model ``sum(I_MPP_i) = sum(E_i / 2 R_i)``,
        i.e. half the conductance-weighted EMF prefix difference.
        """
        if not 0 <= lo < hi <= self.n_modules:
            raise ConfigurationError(
                f"segment [{lo}, {hi}) invalid for {self.n_modules} modules"
            )
        return 0.5 * (self.prefix_weighted_emf[hi] - self.prefix_weighted_emf[lo])
