"""Exact Thevenin algebra for the reconfigurable TEG array.

Topology
--------
The switch fabric of the paper's Fig. 4 can connect the physical chain
of ``N`` modules into any *ordered partition into contiguous groups*:
modules inside a group are wired in parallel, and the groups are wired
in series.  A configuration is therefore fully described by the sorted
0-based indices of each group's first module (``starts``), the 0-based
counterpart of the paper's ``C(g_1, ..., g_n)`` encoding.

Because each module is a linear Thevenin source (:mod:`repro.teg.module`),
every reduction here is exact:

* parallel group:  ``R_g = 1 / sum(1/R_i)``, ``E_g = R_g * sum(E_i/R_i)``
* series chain:    ``E = sum(E_g)``, ``R = sum(R_g)``
* array MPP:       ``I* = E / 2R``, ``P* = E^2 / 4R``

All functions are vectorised over numpy arrays; :class:`SegmentThevenin`
adds O(1) Thevenin lookups for arbitrary contiguous segments via prefix
sums, which the DP-style algorithms (EHTR, exact optimum) rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.teg.module import MPPPoint

__all__ = [
    "SegmentThevenin",
    "array_mpp",
    "array_mpp_multi",
    "array_mpp_rows",
    "array_thevenin",
    "array_thevenin_rows",
    "module_operating_points",
    "parallel_reduce",
    "power_at_current",
    "reduce_configuration",
    "validate_starts",
]


def validate_starts(starts: Sequence[int], n_modules: int) -> np.ndarray:
    """Validate and normalise a group-start index vector.

    Parameters
    ----------
    starts:
        0-based indices of each group's first module.  Must begin with
        0, be strictly increasing, and stay below ``n_modules``.
    n_modules:
        Number of modules in the chain.

    Returns
    -------
    numpy.ndarray
        The starts as an ``int64`` array.

    Raises
    ------
    ConfigurationError
        If the vector does not describe a partition of ``0..n_modules-1``
        into contiguous groups.
    """
    arr = np.asarray(starts, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"starts must be a non-empty 1-D sequence, got {starts!r}")
    if n_modules <= 0:
        raise ConfigurationError(f"n_modules must be positive, got {n_modules}")
    if arr[0] != 0:
        raise ConfigurationError(f"first group must start at module 0, got {arr[0]}")
    if np.any(np.diff(arr) <= 0):
        raise ConfigurationError(f"starts must be strictly increasing, got {arr.tolist()}")
    if arr[-1] >= n_modules:
        raise ConfigurationError(
            f"last group start {arr[-1]} out of range for {n_modules} modules"
        )
    return arr


def parallel_reduce(
    emf: np.ndarray, resistance: np.ndarray
) -> Tuple[float, float]:
    """Thevenin equivalent of one parallel group of modules.

    Returns ``(E_g, R_g)`` where ``R_g = 1/sum(1/R_i)`` and
    ``E_g = R_g * sum(E_i / R_i)`` (conductance-weighted mean EMF).
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    conductance = 1.0 / resistance
    total_conductance = float(conductance.sum())
    r_group = 1.0 / total_conductance
    e_group = r_group * float((emf * conductance).sum())
    return e_group, r_group


def reduce_configuration(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group Thevenin parameters for a configuration.

    Returns
    -------
    (e_groups, r_groups):
        Arrays of length ``len(starts)`` with each group's equivalent
        EMF and resistance, in chain order.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, emf.size)
    conductance = 1.0 / resistance
    group_conductance = np.add.reduceat(conductance, idx)
    group_weighted_emf = np.add.reduceat(emf * conductance, idx)
    r_groups = 1.0 / group_conductance
    e_groups = group_weighted_emf * r_groups
    return e_groups, r_groups


def array_thevenin(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[float, float]:
    """Whole-array Thevenin equivalent ``(E_total, R_total)``."""
    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    return float(e_groups.sum()), float(r_groups.sum())


def array_mpp(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> MPPPoint:
    """Maximum power point of the configured array.

    The array is itself a linear Thevenin source, so the MPP is exact:
    ``I* = E/2R``, ``V* = E/2``, ``P* = E^2/4R``.
    """
    e_total, r_total = array_thevenin(emf, resistance, starts)
    return MPPPoint(
        voltage_v=e_total / 2.0,
        current_a=e_total / (2.0 * r_total),
        power_w=e_total * e_total / (4.0 * r_total),
    )


def array_thevenin_rows(
    emf_rows: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, float]:
    """Whole-array Thevenin of many EMF rows under one configuration.

    The row-batched sibling of :func:`array_thevenin` for the
    constant-resistance module model: ``emf_rows`` is an ``(S, N)``
    matrix of per-module EMFs (one row per time sample / forecast
    step), ``resistance`` the shared ``(N,)`` resistance vector.
    Returns ``(E_total per row, R_total)`` — the configuration fixes
    ``R_total`` across rows.  Elementwise the operations mirror the
    scalar path, so batched sweeps reproduce per-sample results.
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    conductance = 1.0 / np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, conductance.size)
    group_conductance = np.add.reduceat(conductance, idx)
    r_groups = 1.0 / group_conductance
    r_total = float(r_groups.sum())
    weighted = emf_rows * conductance
    group_weighted = np.add.reduceat(weighted, idx, axis=1)
    e_rows = (group_weighted * r_groups).sum(axis=1)
    return e_rows, r_total


def array_mpp_rows(
    emf_rows: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact MPP ``(power, voltage)`` rows for a batched configuration.

    Row-batched :func:`array_mpp`: ``P* = E^2/4R`` and ``V* = E/2``
    for every row of ``emf_rows`` at once — the hot path of the batch
    simulation engine and DNOR's horizon scoring.
    """
    e_rows, r_total = array_thevenin_rows(emf_rows, resistance, starts)
    power = e_rows * e_rows / (4.0 * r_total)
    voltage = e_rows / 2.0
    return power, voltage


def array_mpp_multi(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts_list: Sequence[Sequence[int]],
    validate: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact MPPs of *many configurations* at one temperature state.

    The configuration-batched sibling of :func:`array_mpp` (and the
    transpose of :func:`array_mpp_rows`, which batches time samples
    under one configuration): evaluates every candidate partition in
    ``starts_list`` against the same per-module ``(emf, resistance)``
    vectors in one NumPy pass — the hot path of INOR's
    ``[n_min, n_max]`` candidate sweep.

    Returns ``(power_w, voltage_v, current_a)`` arrays with one entry
    per candidate, **bit-identical** to calling :func:`array_mpp` per
    candidate: all candidates' parallel-group reductions run as one
    ``np.add.reduceat`` over a tiled module axis (same elements, same
    summation order as the per-candidate reduceat), and the per-
    candidate series sums use the same ``ndarray.sum`` kernel the
    scalar path uses.  Algorithms may therefore swap the scalar loop
    for this kernel without perturbing a single decision.

    ``validate=False`` skips the candidate-set validation sweep for
    callers that construct partitions correct by construction (INOR's
    greedy walk); invalid starts then produce undefined results
    instead of :class:`~repro.errors.ConfigurationError`.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    n_modules = emf.size
    candidates = [np.asarray(starts, dtype=np.int64) for starts in starts_list]
    n_candidates = len(candidates)
    if n_candidates == 0:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()

    # Concatenate every candidate's group starts, offset onto a tiled
    # module axis, so one reduceat computes all groups of all
    # candidates (each candidate's last group correctly ends at the
    # next candidate's offset).
    if any(starts.ndim != 1 or starts.size == 0 for starts in candidates):
        for starts in candidates:  # delegate for the precise error
            validate_starts(starts, n_modules)
    sizes = [starts.size for starts in candidates]
    offsets = [0]
    for size in sizes:
        offsets.append(offsets[-1] + size)
    cat = (
        np.concatenate(candidates)
        if n_candidates > 1
        else candidates[0].reshape(-1)
    )

    # Validate the whole candidate set in one vectorised sweep; only on
    # failure fall back to the per-candidate path for its precise error.
    # Masking the candidate boundaries out of the diff plus the
    # first-start-is-zero check implies every start is in-range and
    # non-negative within its candidate.
    if validate:
        bounds = np.asarray(offsets)
        diffs = np.diff(cat)
        boundary = bounds[1:-1] - 1
        if boundary.size:
            diffs[boundary] = 1
        valid = (
            not cat[bounds[:-1]].any()
            and not np.any(cat >= n_modules)
            and not np.any(diffs <= 0)
        )
        if not valid:
            for starts in candidates:
                validate_starts(starts, n_modules)
            raise ConfigurationError(
                "inconsistent candidate configuration set"
            )

    idx = cat + np.repeat(
        np.arange(n_candidates) * n_modules, np.asarray(sizes)
    )
    conductance = 1.0 / resistance
    base = np.empty((2, n_modules))
    base[0] = conductance
    base[1] = emf * conductance
    # groups rows: [0] = summed conductance 1/R_g, [1] = conductance-
    # weighted EMF per group (reduceat's strictly sequential in-segment
    # accumulation matches the per-candidate scalar reduceat bitwise).
    groups = np.add.reduceat(np.tile(base, (1, n_candidates)), idx, axis=1)
    # pair rows: [0] = E_g, [1] = R_g per group.
    pair = np.empty_like(groups)
    pair[1] = 1.0 / groups[0]
    pair[0] = groups[1] * pair[1]

    # Per-candidate series sums: contiguous-row ndarray.sum matches the
    # scalar path's e_groups.sum() pairwise summation bitwise
    # (np.add.reduceat's sequential accumulation would not).
    totals = np.empty((n_candidates, 2))
    for k, (lo, hi) in enumerate(zip(offsets, offsets[1:])):
        pair[:, lo:hi].sum(axis=1, out=totals[k])
    e_total = totals[:, 0]
    r_total = totals[:, 1]
    power = e_total * e_total / (4.0 * r_total)
    voltage = e_total / 2.0
    current = e_total / (2.0 * r_total)
    return power, voltage, current


def power_at_current(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    current_a: float,
) -> float:
    """Array output power when the charger draws ``current_a``.

    Group voltages are ``V_g = E_g - I * R_g``; the array voltage is
    their sum and may include negative terms when a group is driven
    past its short-circuit current (no bypass diodes are modelled,
    matching the paper's fabric).
    """
    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    voltage = float((e_groups - current_a * r_groups).sum())
    return voltage * current_a


def module_operating_points(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    current_a: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-module operating points at a given array current.

    Returns
    -------
    (module_voltage, module_current, module_power):
        Arrays of length ``N``.  Every module in a group shares the
        group voltage; its branch current is ``(E_i - V_g)/R_i`` and may
        be negative for a weak module back-driven by its neighbours —
        the mismatch loss the reconfiguration algorithms fight.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, emf.size)
    e_groups, r_groups = reduce_configuration(emf, resistance, idx)
    group_voltage = e_groups - current_a * r_groups
    # Broadcast each group's voltage back onto its member modules.
    group_of_module = np.zeros(emf.size, dtype=np.int64)
    group_of_module[idx[1:]] = 1
    group_of_module = np.cumsum(group_of_module)
    module_voltage = group_voltage[group_of_module]
    module_current = (emf - module_voltage) / resistance
    module_power = module_voltage * module_current
    return module_voltage, module_current, module_power


@dataclass(frozen=True)
class SegmentThevenin:
    """O(1) Thevenin lookups for contiguous module segments.

    Precomputes prefix sums of conductance and conductance-weighted EMF
    so that any segment ``[lo, hi)`` reduces in constant time.  This is
    the workhorse of the DP-based algorithms (EHTR reconstruction and
    the exact optimum), which evaluate O(N^2) candidate segments.
    """

    prefix_conductance: np.ndarray
    prefix_weighted_emf: np.ndarray

    @classmethod
    def from_modules(
        cls, emf: np.ndarray, resistance: np.ndarray
    ) -> "SegmentThevenin":
        """Build the prefix tables for a module chain."""
        emf = np.asarray(emf, dtype=float)
        resistance = np.asarray(resistance, dtype=float)
        conductance = 1.0 / resistance
        prefix_g = np.concatenate(([0.0], np.cumsum(conductance)))
        prefix_eg = np.concatenate(([0.0], np.cumsum(emf * conductance)))
        return cls(prefix_conductance=prefix_g, prefix_weighted_emf=prefix_eg)

    @property
    def n_modules(self) -> int:
        """Number of modules covered by the tables."""
        return self.prefix_conductance.size - 1

    def segment(self, lo: int, hi: int) -> Tuple[float, float]:
        """Thevenin ``(E, R)`` of the parallel group ``[lo, hi)``.

        Raises
        ------
        ConfigurationError
            If the segment is empty or out of range.
        """
        if not 0 <= lo < hi <= self.n_modules:
            raise ConfigurationError(
                f"segment [{lo}, {hi}) invalid for {self.n_modules} modules"
            )
        conductance = self.prefix_conductance[hi] - self.prefix_conductance[lo]
        weighted = self.prefix_weighted_emf[hi] - self.prefix_weighted_emf[lo]
        r_group = 1.0 / conductance
        return weighted * r_group, r_group

    def segment_mpp_current_sum(self, lo: int, hi: int) -> float:
        """Sum of member MPP currents over ``[lo, hi)``.

        For the linear module model ``sum(I_MPP_i) = sum(E_i / 2 R_i)``,
        i.e. half the conductance-weighted EMF prefix difference.
        """
        if not 0 <= lo < hi <= self.n_modules:
            raise ConfigurationError(
                f"segment [{lo}, {hi}) invalid for {self.n_modules} modules"
            )
        return 0.5 * (self.prefix_weighted_emf[hi] - self.prefix_weighted_emf[lo])
