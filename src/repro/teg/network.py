"""Exact Thevenin algebra for the reconfigurable TEG array.

Topology
--------
The switch fabric of the paper's Fig. 4 can connect the physical chain
of ``N`` modules into any *ordered partition into contiguous groups*:
modules inside a group are wired in parallel, and the groups are wired
in series.  A configuration is therefore fully described by the sorted
0-based indices of each group's first module (``starts``), the 0-based
counterpart of the paper's ``C(g_1, ..., g_n)`` encoding.

Because each module is a linear Thevenin source (:mod:`repro.teg.module`),
every reduction here is exact:

* parallel group:  ``R_g = 1 / sum(1/R_i)``, ``E_g = R_g * sum(E_i/R_i)``
* series chain:    ``E = sum(E_g)``, ``R = sum(R_g)``
* array MPP:       ``I* = E / 2R``, ``P* = E^2 / 4R``

All functions are vectorised over numpy arrays; :class:`SegmentThevenin`
adds O(1) Thevenin lookups for arbitrary contiguous segments via prefix
sums, which the DP-style algorithms (EHTR, exact optimum) rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.teg.module import MPPPoint


@lru_cache(maxsize=128)
def _index_arange(n: int) -> np.ndarray:
    """A shared, read-only ``arange(n)`` (hot-path index scaffolding)."""
    indices = np.arange(n, dtype=np.int64)
    indices.setflags(write=False)
    return indices


@lru_cache(maxsize=128)
def _window_layout(
    n_min: int, n_max: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Read-only ``(counts, offsets, ragged mask)`` of a candidate window.

    Pure functions of ``(n_min, n_max)``, shared across the per-decision
    :func:`partition_multi` calls of a simulation run.
    """
    counts = np.arange(n_min, n_max + 1, dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    mask = _index_arange(n_max)[None, :] < counts[:, None]
    for array in (counts, offsets, mask):
        array.setflags(write=False)
    return counts, offsets, mask


@lru_cache(maxsize=128)
def _lift_plan(n_max: int) -> Tuple[Tuple[int, np.ndarray], ...]:
    """Binary-lifting schedule: per bit, the read-only column indices
    (iterate numbers ``j < n_max`` with that bit set)."""
    j_index = _index_arange(n_max)
    plan = []
    bit = 1
    while bit < n_max:
        columns = j_index[(j_index & bit) != 0]
        columns.setflags(write=False)
        plan.append((bit, columns))
        bit <<= 1
    return tuple(plan)

__all__ = [
    "PartitionSet",
    "SegmentThevenin",
    "array_mpp",
    "array_mpp_multi",
    "array_mpp_rows",
    "array_mpp_rows_multi",
    "array_thevenin",
    "array_thevenin_rows",
    "greedy_balanced_partition",
    "module_operating_points",
    "parallel_reduce",
    "partition_multi",
    "power_at_current",
    "reduce_configuration",
    "validate_starts",
]


def validate_starts(starts: Sequence[int], n_modules: int) -> np.ndarray:
    """Validate and normalise a group-start index vector.

    Parameters
    ----------
    starts:
        0-based indices of each group's first module.  Must begin with
        0, be strictly increasing, and stay below ``n_modules``.
    n_modules:
        Number of modules in the chain.

    Returns
    -------
    numpy.ndarray
        The starts as an ``int64`` array.

    Raises
    ------
    ConfigurationError
        If the vector does not describe a partition of ``0..n_modules-1``
        into contiguous groups.
    """
    arr = np.asarray(starts, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(f"starts must be a non-empty 1-D sequence, got {starts!r}")
    if n_modules <= 0:
        raise ConfigurationError(f"n_modules must be positive, got {n_modules}")
    if arr[0] != 0:
        raise ConfigurationError(f"first group must start at module 0, got {arr[0]}")
    if np.any(np.diff(arr) <= 0):
        raise ConfigurationError(f"starts must be strictly increasing, got {arr.tolist()}")
    if arr[-1] >= n_modules:
        raise ConfigurationError(
            f"last group start {arr[-1]} out of range for {n_modules} modules"
        )
    return arr


def greedy_balanced_partition(mpp_currents: np.ndarray, n_groups: int) -> np.ndarray:
    """The inner loop of Algorithm 1: one greedy balanced partition.

    Cuts each group where its MPP-current sum is closest to
    ``I_ideal``, ties extending the group, while always leaving at
    least one module for every remaining group.  This is the scalar
    reference the vectorised :func:`partition_multi` kernel is pinned
    bit-identical against (re-exported as
    :func:`repro.core.inor.greedy_balanced_partition`).

    Two float realisations of the same real-arithmetic rule exist, and
    which one runs is part of the bit-parity contract:

    * **Non-negative currents** (the physical radiator case) use the
      canonical *prefix-bracket* form — each cut is located by a
      binary search of the cumulative-current prefix table and the
      bracketing pair compared through their midpoint, the exact
      expression tree :func:`partition_multi` vectorises.  A
      locally-accumulated error walk agrees with it in real
      arithmetic but rounds mathematical ties differently (uniform
      module currents being the practical case), which is why the
      prefix form is canonical on this branch.
    * **Windows containing back-biased modules** (negative currents)
      fall back to the classic accumulation walk, whose
      stop-at-first-error-increase behaviour is the reference there —
      and :func:`partition_multi` delegates to it verbatim.

    Returns
    -------
    numpy.ndarray
        Group start indices (0-based), length ``n_groups``.
    """
    currents = np.asarray(mpp_currents, dtype=float)
    n_modules = currents.size
    if not 1 <= n_groups <= n_modules:
        raise ConfigurationError(
            f"n_groups must lie in [1, {n_modules}], got {n_groups}"
        )
    starts = np.zeros(n_groups, dtype=np.int64)
    if n_groups == 1:
        return starts
    if float(currents.min()) >= 0.0:
        _greedy_prefix_walk(currents, n_groups, starts)
    else:
        _greedy_accumulation_walk(currents, n_groups, starts)
    return starts


def _greedy_prefix_walk(
    currents: np.ndarray, n_groups: int, starts: np.ndarray
) -> None:
    """Canonical prefix-bracket cuts for non-negative currents.

    Scalar twin of :func:`partition_multi`'s vectorised map: identical
    expression tree (same prefix table, same bracket-midpoint tie
    rule, same flat-run extension and clamps), so the two produce the
    same cut indices bit-for-bit.  Runs on plain Python floats and
    :func:`bisect.bisect_right` — IEEE-double arithmetic identical to
    the NumPy elementwise ops, without per-cut array dispatch.
    """
    n_modules = currents.size
    # tolist() yields the same doubles as the float64 prefix table.
    prefix = np.concatenate(([0.0], np.cumsum(currents))).tolist()
    has_flats = float(currents.min()) == 0.0
    ideal = float(currents.sum()) / n_groups
    end = n_modules + 1
    pos = 0
    for j in range(1, n_groups):
        # First prefix entry strictly above the ideal boundary; the
        # bracketing pair decides the cut, ties to the later one (a
        # bound past the table resolves below, like the kernel's +inf
        # padding).
        target = prefix[pos] + ideal
        bound = bisect_right(prefix, target)
        if bound >= end:
            cut = n_modules
        else:
            cut = bound - (prefix[bound] + prefix[bound - 1] > 2.0 * target)
        if cut <= pos:
            cut = pos + 1
        if has_flats:
            # Zero-current flat runs: equal prefix value means equal
            # error, and ties extend — jump to the run's end.
            cut = bisect_right(prefix, prefix[cut]) - 1
        # The cut may go no further than n_modules - (n_groups - j) so
        # later groups stay non-empty.
        max_cut = n_modules - (n_groups - j)
        if cut > max_cut:
            cut = max_cut
        starts[j] = cut
        pos = cut


def _greedy_accumulation_walk(
    currents: np.ndarray, n_groups: int, starts: np.ndarray
) -> None:
    """The classic left-to-right error walk (reference for negatives).

    Accumulates the group sum module by module and stops at the first
    error increase — the only correct reading of the greedy rule when
    negative currents make the cumulative sum non-monotone.
    """
    n_modules = currents.size
    ideal = float(currents.sum()) / n_groups
    pos = 0
    for j in range(1, n_groups):
        max_cut = n_modules - (n_groups - j)
        group_sum = currents[pos]
        cut = pos + 1
        best_err = abs(group_sum - ideal)
        while cut < max_cut:
            extended = group_sum + currents[cut]
            err = abs(extended - ideal)
            if err <= best_err:
                group_sum = extended
                cut += 1
                best_err = err
            else:
                break
        starts[j] = cut
        pos = cut


@dataclass(frozen=True)
class PartitionSet:
    """A ragged set of candidate partitions in flat (concatenated) form.

    The native output layout of :func:`partition_multi` and the native
    input layout of :func:`array_mpp_multi`: every candidate's start
    indices live back-to-back in ``cat`` with ``offsets`` delimiting
    them, so the batched kernels consume the set without any
    per-candidate Python.  Behaves as a read-only sequence of start
    vectors (``len``, indexing and iteration return int64 views).

    Attributes
    ----------
    cat:
        Concatenated start indices of all candidates (``int64``).
    offsets:
        Candidate boundaries into ``cat``, length ``n_candidates + 1``.
    n_modules:
        Chain length every candidate partitions.
    """

    cat: np.ndarray
    offsets: np.ndarray
    n_modules: int

    def __len__(self) -> int:
        return self.offsets.size - 1

    def __getitem__(self, index: int) -> np.ndarray:
        lo, hi = self.offsets[index], self.offsets[index + 1]
        return self.cat[lo:hi]

    def __iter__(self):
        for k in range(len(self)):
            yield self[k]

    @property
    def sizes(self) -> np.ndarray:
        """Group count of each candidate."""
        return np.diff(self.offsets)


def partition_multi(
    mpp_currents: np.ndarray, n_min: int, n_max: int
) -> PartitionSet:
    """Greedy balanced partitions for *every* group count in a window.

    The candidate-batched sibling of :func:`greedy_balanced_partition`:
    builds the Algorithm-1 partition for every ``n`` in
    ``[n_min, n_max]`` from one cumulative-current prefix table,
    replacing O((n_max - n_min + 1) * N) Python walk steps with a
    handful of vectorised passes:

    1. One 2-D ``searchsorted`` against the prefix sums resolves, for
       every candidate and every possible group-start position at
       once, where the *next* cut would land — the two prefix entries
       bracketing ``P[pos] + I_ideal`` are compared with the walk's
       tie rule (extend on equal error, and on through zero-current
       flat runs), yielding each candidate's pure next-cut map over
       positions ``0..N``.
    2. Binary lifting composes that map with itself O(log n_max)
       times, producing every candidate's j-th cut for all ``j``
       simultaneously — the sequential walk recursion collapses into
       gather operations.
    3. The non-empty-tail constraint is applied as one vectorised
       clamp ``min(cut_j, N - n + j)``: the next-cut map is monotone
       in the start position, so clamping after iteration is exactly
       equivalent to the walk's per-step clamp (once the clamp binds,
       every later cut is provably the forced consecutive index).

    Cut indices are bit-identical to running the scalar walk per
    candidate (pinned in the parity suite).  The cumulative-prefix
    shortcut requires the group sums to grow monotonically, i.e.
    non-negative MPP currents; windows containing back-biased modules
    (negative EMF) fall back to the scalar walk per candidate, whose
    first-local-minimum semantics are the reference.

    Returns
    -------
    PartitionSet
        Candidates in ascending group-count order (``n_min`` first).
    """
    currents = np.asarray(mpp_currents, dtype=float)
    n_modules = currents.size
    if currents.ndim != 1 or n_modules == 0:
        raise ConfigurationError(
            f"mpp_currents must be a non-empty 1-D array, got shape "
            f"{currents.shape}"
        )
    n_min = int(n_min)
    n_max = int(n_max)
    if not 1 <= n_min <= n_max <= n_modules:
        raise ConfigurationError(
            f"invalid group-count window [{n_min}, {n_max}] for "
            f"{n_modules} modules"
        )
    counts, offsets, ragged_mask = _window_layout(n_min, n_max)

    lowest = float(currents.min())
    if not lowest >= 0.0:  # negative or NaN
        # Non-monotone cumulative current (back-biased modules): the
        # walk's stop-at-first-error-increase rule is the reference
        # behaviour and cannot be expressed as a prefix search.
        cat = np.zeros(offsets[-1], dtype=np.int64)
        for k in range(counts.size):
            cat[offsets[k] : offsets[k + 1]] = greedy_balanced_partition(
                currents, int(counts[k])
            )
        return PartitionSet(cat=cat, offsets=offsets, n_modules=n_modules)

    # prefix[c] = sum(currents[:c]); the walk's group sum for a cut at
    # ``c`` with the group starting at ``pos`` is prefix[c] - prefix[pos].
    prefix = np.concatenate(([0.0], np.cumsum(currents)))
    # ndarray.sum matches the scalar walk's ideal exactly (the prefix
    # tail would not: cumsum accumulates sequentially, sum pairwise).
    ideals = float(currents.sum()) / counts
    n_candidates = counts.size

    # --- 1. the pure next-cut map, all candidates x all positions ----
    # targets[k, c] = P[c] + I_ideal_k; bound = first prefix entry
    # strictly above it, so (bound-1, bound) bracket the target.
    targets = prefix[None, :] + ideals[:, None]
    bound = prefix.searchsorted(targets, side="right")
    # Walk tie rule via the bracket midpoint: the lower cut wins only
    # on strictly smaller error, i.e. P[bound] + P[bound-1] > 2*target
    # (prefix is padded with +inf so bound = N+1 resolves below).
    padded = np.concatenate((prefix, [np.inf]))
    nxt = bound - (padded[bound] + prefix[bound - 1] > 2.0 * targets)
    # Every group takes at least one module, and the map saturates at
    # N (an absorbing state the final tail clamp resolves).
    np.maximum(nxt, _index_arange(n_modules + 2)[None, 1:], out=nxt)
    np.minimum(nxt, n_modules, out=nxt)
    if lowest == 0.0:
        # Zero-current flat runs: equal prefix value means equal error,
        # and the walk extends through ties — jump to the run's end.
        nxt = prefix.searchsorted(prefix[nxt], side="right") - 1

    # --- 2. all walk iterates by binary lifting ----------------------
    # cuts[k, j] = nxt_k^j(0); column j is assembled from the powers
    # nxt^(2^b) selected by j's bits (composition of powers commutes).
    # Gathers run on flattened tables with per-candidate row offsets —
    # a direct C-level take, unlike the take_along_axis wrapper.
    cuts = np.zeros((n_candidates, n_max), dtype=np.int64)
    row_base = (_index_arange(n_candidates) * (n_modules + 1))[:, None]
    doubling = nxt  # (n_candidates, N + 1), C-contiguous
    flat = doubling.reshape(-1)
    lift_plan = _lift_plan(n_max)
    for step, (bit, columns) in enumerate(lift_plan):
        cuts[:, columns] = flat[cuts[:, columns] + row_base]
        if step + 1 < len(lift_plan):
            doubling = flat[doubling + row_base]
            flat = doubling.reshape(-1)

    # --- 3. tail clamp + ragged extraction ---------------------------
    # min(cut_j, N - n + j) keeps every remaining group non-empty; the
    # map's monotonicity makes this equivalent to clamping per step.
    np.minimum(
        cuts,
        (n_modules - counts)[:, None] + _index_arange(n_max)[None, :],
        out=cuts,
    )
    cat = cuts[ragged_mask]
    return PartitionSet(cat=cat, offsets=offsets, n_modules=n_modules)


def parallel_reduce(
    emf: np.ndarray, resistance: np.ndarray
) -> Tuple[float, float]:
    """Thevenin equivalent of one parallel group of modules.

    Returns ``(E_g, R_g)`` where ``R_g = 1/sum(1/R_i)`` and
    ``E_g = R_g * sum(E_i / R_i)`` (conductance-weighted mean EMF).
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    conductance = 1.0 / resistance
    total_conductance = float(conductance.sum())
    r_group = 1.0 / total_conductance
    e_group = r_group * float((emf * conductance).sum())
    return e_group, r_group


def reduce_configuration(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-group Thevenin parameters for a configuration.

    Returns
    -------
    (e_groups, r_groups):
        Arrays of length ``len(starts)`` with each group's equivalent
        EMF and resistance, in chain order.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, emf.size)
    conductance = 1.0 / resistance
    group_conductance = np.add.reduceat(conductance, idx)
    group_weighted_emf = np.add.reduceat(emf * conductance, idx)
    r_groups = 1.0 / group_conductance
    e_groups = group_weighted_emf * r_groups
    return e_groups, r_groups


def array_thevenin(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[float, float]:
    """Whole-array Thevenin equivalent ``(E_total, R_total)``."""
    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    return float(e_groups.sum()), float(r_groups.sum())


def array_mpp(
    emf: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> MPPPoint:
    """Maximum power point of the configured array.

    The array is itself a linear Thevenin source, so the MPP is exact:
    ``I* = E/2R``, ``V* = E/2``, ``P* = E^2/4R``.
    """
    e_total, r_total = array_thevenin(emf, resistance, starts)
    return MPPPoint(
        voltage_v=e_total / 2.0,
        current_a=e_total / (2.0 * r_total),
        power_w=e_total * e_total / (4.0 * r_total),
    )


def array_thevenin_rows(
    emf_rows: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, float]:
    """Whole-array Thevenin of many EMF rows under one configuration.

    The row-batched sibling of :func:`array_thevenin` for the
    constant-resistance module model: ``emf_rows`` is an ``(S, N)``
    matrix of per-module EMFs (one row per time sample / forecast
    step), ``resistance`` the shared ``(N,)`` resistance vector.
    Returns ``(E_total per row, R_total)`` — the configuration fixes
    ``R_total`` across rows.  Elementwise the operations mirror the
    scalar path, so batched sweeps reproduce per-sample results.
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    conductance = 1.0 / np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, conductance.size)
    group_conductance = np.add.reduceat(conductance, idx)
    r_groups = 1.0 / group_conductance
    r_total = float(r_groups.sum())
    weighted = emf_rows * conductance
    group_weighted = np.add.reduceat(weighted, idx, axis=1)
    e_rows = (group_weighted * r_groups).sum(axis=1)
    return e_rows, r_total


def array_mpp_rows(
    emf_rows: np.ndarray, resistance: np.ndarray, starts: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact MPP ``(power, voltage)`` rows for a batched configuration.

    Row-batched :func:`array_mpp`: ``P* = E^2/4R`` and ``V* = E/2``
    for every row of ``emf_rows`` at once — the hot path of the batch
    simulation engine and DNOR's horizon scoring.
    """
    e_rows, r_total = array_thevenin_rows(emf_rows, resistance, starts)
    power = e_rows * e_rows / (4.0 * r_total)
    voltage = e_rows / 2.0
    return power, voltage


def array_mpp_rows_multi(
    emf_rows: np.ndarray,
    resistance: np.ndarray,
    starts_list: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact MPP rows of *many configurations* over stacked EMF rows.

    The configuration-batched sibling of :func:`array_mpp_rows`: every
    configuration in ``starts_list`` is evaluated against the same
    ``(S, N)`` EMF matrix in one pass — all configurations' parallel
    groups reduce through a single ``np.add.reduceat`` over a tiled
    module axis, exactly like :func:`array_mpp_multi` does for one
    temperature state.  This is the hot path of DNOR's epoch planning,
    which scores the old configuration and every proposal over the
    same forecast horizon.

    Returns ``(power_w, voltage_v)`` arrays of shape
    ``(n_configs, S)``, **bit-identical** to calling
    :func:`array_mpp_rows` once per configuration: the tiled reduceat
    preserves each group's in-segment accumulation order and the
    per-configuration series sums run over contiguous slices with the
    same pairwise ``ndarray.sum`` kernel the single-configuration path
    uses.
    """
    emf_rows = np.asarray(emf_rows, dtype=float)
    conductance = 1.0 / np.asarray(resistance, dtype=float)
    n_modules = conductance.size
    candidates = [
        validate_starts(starts, n_modules) for starts in starts_list
    ]
    n_configs = len(candidates)
    if n_configs == 0:
        empty = np.empty((0, emf_rows.shape[0]))
        return empty, empty.copy()
    sizes = np.array([starts.size for starts in candidates])
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    cat = np.concatenate(candidates) if n_configs > 1 else candidates[0]
    idx = cat + np.repeat(np.arange(n_configs) * n_modules, sizes)

    group_conductance = np.add.reduceat(np.tile(conductance, n_configs), idx)
    r_groups = 1.0 / group_conductance
    weighted = emf_rows * conductance
    group_weighted = np.add.reduceat(
        np.tile(weighted, (1, n_configs)), idx, axis=1
    )
    contrib = group_weighted * r_groups

    n_rows = emf_rows.shape[0]
    power = np.empty((n_configs, n_rows))
    voltage = np.empty((n_configs, n_rows))
    for k, (lo, hi) in enumerate(zip(offsets, offsets[1:])):
        e_rows = contrib[:, lo:hi].sum(axis=1)
        r_total = float(r_groups[lo:hi].sum())
        power[k] = e_rows * e_rows / (4.0 * r_total)
        voltage[k] = e_rows / 2.0
    return power, voltage


def array_mpp_multi(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts_list: Sequence[Sequence[int]],
    validate: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Exact MPPs of *many configurations* at one temperature state.

    The configuration-batched sibling of :func:`array_mpp` (and the
    transpose of :func:`array_mpp_rows`, which batches time samples
    under one configuration): evaluates every candidate partition in
    ``starts_list`` against the same per-module ``(emf, resistance)``
    vectors in one NumPy pass — the hot path of INOR's
    ``[n_min, n_max]`` candidate sweep.

    Returns ``(power_w, voltage_v, current_a)`` arrays with one entry
    per candidate, **bit-identical** to calling :func:`array_mpp` per
    candidate: all candidates' parallel-group reductions run as one
    ``np.add.reduceat`` over a tiled module axis (same elements, same
    summation order as the per-candidate reduceat), and the per-
    candidate series sums use the same ``ndarray.sum`` kernel the
    scalar path uses.  Algorithms may therefore swap the scalar loop
    for this kernel without perturbing a single decision.

    ``validate=False`` skips the candidate-set validation sweep for
    callers that construct partitions correct by construction (INOR's
    greedy walk); invalid starts then produce undefined results
    instead of :class:`~repro.errors.ConfigurationError`.

    ``starts_list`` may also be a :class:`PartitionSet` (the native
    output of :func:`partition_multi`), whose flat layout is consumed
    directly — the build + score pipeline then runs with no
    per-candidate Python at all.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    n_modules = emf.size
    if isinstance(starts_list, PartitionSet):
        if starts_list.n_modules != n_modules:
            raise ConfigurationError(
                f"partition set covers {starts_list.n_modules} modules, "
                f"parameters {n_modules}"
            )
        cat = starts_list.cat
        offsets = starts_list.offsets
        sizes = starts_list.sizes
        n_candidates = offsets.size - 1
    else:
        candidates = [
            np.asarray(starts, dtype=np.int64) for starts in starts_list
        ]
        n_candidates = len(candidates)
        if n_candidates:
            # Concatenate every candidate's group starts, offset onto a
            # tiled module axis, so one reduceat computes all groups of
            # all candidates (each candidate's last group correctly ends
            # at the next candidate's offset).
            if any(
                starts.ndim != 1 or starts.size == 0 for starts in candidates
            ):
                for starts in candidates:  # delegate for the precise error
                    validate_starts(starts, n_modules)
            sizes = np.array([starts.size for starts in candidates])
            offsets = np.concatenate(([0], np.cumsum(sizes)))
            cat = (
                np.concatenate(candidates)
                if n_candidates > 1
                else candidates[0].reshape(-1)
            )
    if n_candidates == 0:
        empty = np.empty(0)
        return empty, empty.copy(), empty.copy()

    # Validate the whole candidate set in one vectorised sweep; only on
    # failure fall back to the per-candidate path for its precise error.
    # Masking the candidate boundaries out of the diff plus the
    # first-start-is-zero check implies every start is in-range and
    # non-negative within its candidate.
    if validate:
        diffs = np.diff(cat)
        boundary = offsets[1:-1] - 1
        if boundary.size:
            diffs[boundary] = 1
        valid = (
            not cat[offsets[:-1]].any()
            and not np.any(cat >= n_modules)
            and not np.any(diffs <= 0)
        )
        if not valid:
            for starts in (
                starts_list
                if isinstance(starts_list, PartitionSet)
                else candidates
            ):
                validate_starts(starts, n_modules)
            raise ConfigurationError(
                "inconsistent candidate configuration set"
            )

    idx = cat + np.repeat(np.arange(n_candidates) * n_modules, sizes)
    conductance = 1.0 / resistance
    base = np.empty((2, n_modules))
    base[0] = conductance
    base[1] = emf * conductance
    # groups rows: [0] = summed conductance 1/R_g, [1] = conductance-
    # weighted EMF per group (reduceat's strictly sequential in-segment
    # accumulation matches the per-candidate scalar reduceat bitwise).
    groups = np.add.reduceat(np.tile(base, (1, n_candidates)), idx, axis=1)
    # pair rows: [0] = E_g, [1] = R_g per group.
    pair = np.empty_like(groups)
    pair[1] = 1.0 / groups[0]
    pair[0] = groups[1] * pair[1]

    # Per-candidate series sums: contiguous-row ndarray.sum matches the
    # scalar path's e_groups.sum() pairwise summation bitwise
    # (np.add.reduceat's sequential accumulation would not).
    totals = np.empty((n_candidates, 2))
    for k, (lo, hi) in enumerate(zip(offsets, offsets[1:])):
        pair[:, lo:hi].sum(axis=1, out=totals[k])
    e_total = totals[:, 0]
    r_total = totals[:, 1]
    power = e_total * e_total / (4.0 * r_total)
    voltage = e_total / 2.0
    current = e_total / (2.0 * r_total)
    return power, voltage, current


def power_at_current(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    current_a: float,
) -> float:
    """Array output power when the charger draws ``current_a``.

    Group voltages are ``V_g = E_g - I * R_g``; the array voltage is
    their sum and may include negative terms when a group is driven
    past its short-circuit current (no bypass diodes are modelled,
    matching the paper's fabric).
    """
    e_groups, r_groups = reduce_configuration(emf, resistance, starts)
    voltage = float((e_groups - current_a * r_groups).sum())
    return voltage * current_a


def module_operating_points(
    emf: np.ndarray,
    resistance: np.ndarray,
    starts: Sequence[int],
    current_a: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-module operating points at a given array current.

    Returns
    -------
    (module_voltage, module_current, module_power):
        Arrays of length ``N``.  Every module in a group shares the
        group voltage; its branch current is ``(E_i - V_g)/R_i`` and may
        be negative for a weak module back-driven by its neighbours —
        the mismatch loss the reconfiguration algorithms fight.
    """
    emf = np.asarray(emf, dtype=float)
    resistance = np.asarray(resistance, dtype=float)
    idx = validate_starts(starts, emf.size)
    e_groups, r_groups = reduce_configuration(emf, resistance, idx)
    group_voltage = e_groups - current_a * r_groups
    # Broadcast each group's voltage back onto its member modules.
    group_of_module = np.zeros(emf.size, dtype=np.int64)
    group_of_module[idx[1:]] = 1
    group_of_module = np.cumsum(group_of_module)
    module_voltage = group_voltage[group_of_module]
    module_current = (emf - module_voltage) / resistance
    module_power = module_voltage * module_current
    return module_voltage, module_current, module_power


@dataclass(frozen=True)
class SegmentThevenin:
    """O(1) Thevenin lookups for contiguous module segments.

    Precomputes prefix sums of conductance and conductance-weighted EMF
    so that any segment ``[lo, hi)`` reduces in constant time.  This is
    the workhorse of the DP-based algorithms (EHTR reconstruction and
    the exact optimum), which evaluate O(N^2) candidate segments.
    """

    prefix_conductance: np.ndarray
    prefix_weighted_emf: np.ndarray

    @classmethod
    def from_modules(
        cls, emf: np.ndarray, resistance: np.ndarray
    ) -> "SegmentThevenin":
        """Build the prefix tables for a module chain."""
        emf = np.asarray(emf, dtype=float)
        resistance = np.asarray(resistance, dtype=float)
        conductance = 1.0 / resistance
        prefix_g = np.concatenate(([0.0], np.cumsum(conductance)))
        prefix_eg = np.concatenate(([0.0], np.cumsum(emf * conductance)))
        return cls(prefix_conductance=prefix_g, prefix_weighted_emf=prefix_eg)

    @property
    def n_modules(self) -> int:
        """Number of modules covered by the tables."""
        return self.prefix_conductance.size - 1

    def segment(self, lo: int, hi: int) -> Tuple[float, float]:
        """Thevenin ``(E, R)`` of the parallel group ``[lo, hi)``.

        Raises
        ------
        ConfigurationError
            If the segment is empty or out of range.
        """
        if not 0 <= lo < hi <= self.n_modules:
            raise ConfigurationError(
                f"segment [{lo}, {hi}) invalid for {self.n_modules} modules"
            )
        conductance = self.prefix_conductance[hi] - self.prefix_conductance[lo]
        weighted = self.prefix_weighted_emf[hi] - self.prefix_weighted_emf[lo]
        r_group = 1.0 / conductance
        return weighted * r_group, r_group

    def segment_mpp_current_sum(self, lo: int, hi: int) -> float:
        """Sum of member MPP currents over ``[lo, hi)``.

        For the linear module model ``sum(I_MPP_i) = sum(E_i / 2 R_i)``,
        i.e. half the conductance-weighted EMF prefix difference.
        """
        if not 0 <= lo < hi <= self.n_modules:
            raise ConfigurationError(
                f"segment [{lo}, {hi}) invalid for {self.n_modules} modules"
            )
        return 0.5 * (self.prefix_weighted_emf[hi] - self.prefix_weighted_emf[lo])
