"""The pluggable TEG module-model protocol.

The paper's Eq. (2) single-material Thevenin module used to be fused
into every layer of the engine: physics, grid-stacked execution, the
streaming service, the multi-path bank and the array facade each
computed ``material.seebeck_v_per_k * n_couples`` inline, and the cache
fingerprint and scenario JSON hard-wired the single-material field
list.  :class:`ModuleModel` is the seam that un-hardwires it, the same
way :class:`repro.thermal.boundary.ThermalBoundary` un-hardwired the
radiator:

* :meth:`ModuleModel.emf` maps a temperature-difference array (any
  shape) plus an optional matching mean-junction-temperature array to
  per-module open-circuit EMFs, vectorised — this is the *physics
  plane*, evaluated at the boundary-solved junction temperatures.
* :meth:`ModuleModel.emf_coefficient` /
  :meth:`ModuleModel.internal_resistance` give the nominal Thevenin
  linearisation the *decision plane* uses (policies, grid stacking,
  the session hub): one volts-per-kelvin coefficient and one series
  resistance, optionally re-evaluated at a mean junction temperature.
  Decisions stay on the nominal point so online and offline decision
  logs agree by construction; chain resistance stays a single shared
  scalar so the row-stacked Thevenin kernels keep their one-resistance
  fast path.
* :meth:`ModuleModel.params_dict` / :meth:`ModuleModel.from_params_dict`
  give a loss-free JSON form, and the module-level registry
  (:func:`register_module_model`, :func:`module_model_to_json_dict`,
  :func:`module_model_from_json_dict`) dispatches on a ``model_type``
  tag so shard manifests and cache fingerprints name the model, not
  just its parameter floats.

:class:`repro.teg.module.TEGModule` is simply the first registered
model (``"single-material"``, pinned bit-identical to the pre-protocol
arithmetic); :class:`repro.teg.segmented.SegmentedModule` — per-segment
materials along the hot-to-cold gradient — is the second.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Mapping, Type, Union

import numpy as np

from repro.errors import ConfigurationError

#: Scalar-or-array temperature argument accepted by the protocol.
TempLike = Union[float, np.ndarray, None]


class ModuleModel(ABC):
    """Electrical model of one TEG module position in the chain.

    Subclasses set a unique :attr:`model_type` tag, implement the
    vectorised EMF/resistance contract and the loss-free
    :meth:`params_dict` / :meth:`from_params_dict` pair, and call
    :func:`register_module_model` so manifests and cache fingerprints
    can dispatch on the tag.
    """

    #: Registered type tag; unique per concrete module model.
    model_type: str = ""

    # ------------------------------------------------------------------
    # The electrical contract
    # ------------------------------------------------------------------
    @abstractmethod
    def emf(
        self, delta_t_k: np.ndarray, mean_temp_c: TempLike = None
    ) -> np.ndarray:
        """Open-circuit EMF for temperature differences (physics plane).

        ``delta_t_k`` may be any shape (a scalar, a per-module row or a
        whole ``(T, N)`` trace matrix); ``mean_temp_c``, when given,
        must broadcast against it and carries the mean junction
        temperature of each entry so temperature-interpolated models
        evaluate their materials at the right point along the gradient.
        ``None`` evaluates at the material reference temperature.  The
        implementation must be elementwise (no cross-sample coupling)
        and vectorised — no per-sample Python.
        """

    @abstractmethod
    def emf_coefficient(self, mean_temp_c: TempLike = None):
        """Nominal EMF per kelvin of module dT (decision plane).

        With ``mean_temp_c=None`` this is a plain float — the Thevenin
        linearisation every decision path multiplies against its own
        temperature differences (keeping each call site's historical
        floating-point expression).  An array argument returns the
        coefficient re-evaluated per entry, vectorised.
        """

    @abstractmethod
    def internal_resistance(self, mean_temp_c: TempLike = None):
        """Series internal resistance of the module (ohms).

        With ``mean_temp_c=None`` this is the nominal scalar shared by
        the whole chain — the batched Thevenin kernels rely on one
        resistance per row.  An array argument returns per-entry
        drift-evaluated resistances, vectorised.
        """

    # ------------------------------------------------------------------
    # Loss-free JSON round trip behind the type tag
    # ------------------------------------------------------------------
    @abstractmethod
    def params_dict(self) -> Dict[str, object]:
        """JSON-safe parameter dictionary reproducing this model.

        Scalars travel as plain JSON numbers (which round-trip float64
        exactly); structured models (segment lists) nest plain dicts
        and lists of the same scalars.
        """

    @classmethod
    @abstractmethod
    def from_params_dict(cls, params: Dict[str, object]) -> "ModuleModel":
        """Rebuild a model from :meth:`params_dict` output."""

    def to_json_dict(self) -> Dict[str, object]:
        """The tagged envelope: ``{"type": <tag>, "params": {...}}``."""
        return module_model_to_json_dict(self)

    def fingerprint_tokens(self) -> bytes:
        """Lossless byte tokens of the type tag plus every parameter.

        Feeds :func:`repro.sim.cache.physics_fingerprint`; two module
        models of different registered types never share tokens even
        with identical parameter floats.
        """
        return f"module-model={self.model_type};".encode() + _param_tokens(
            self.params_dict()
        )


def _param_tokens(value: object, prefix: str = "") -> bytes:
    """Canonical byte tokens of one (possibly nested) parameter value.

    Dict keys are visited in sorted order so the token stream does not
    depend on dict construction order; lists are visited positionally;
    floats render as ``float.hex`` (lossless), other JSON scalars by
    type-tagged repr.
    """
    if isinstance(value, dict):
        chunks = [f"{prefix}{{;".encode()]
        for key in sorted(value):
            chunks.append(_param_tokens(value[key], prefix=f"{prefix}{key}."))
        chunks.append(f"{prefix}}};".encode())
        return b"".join(chunks)
    if isinstance(value, (list, tuple)):
        chunks = [f"{prefix}[{len(value)};".encode()]
        for index, item in enumerate(value):
            chunks.append(_param_tokens(item, prefix=f"{prefix}{index}."))
        chunks.append(f"{prefix}];".encode())
        return b"".join(chunks)
    if isinstance(value, bool):
        return f"{prefix}=b{int(value)};".encode()
    if isinstance(value, float):
        return f"{prefix}={value.hex()};".encode()
    if isinstance(value, int):
        return f"{prefix}=i{value};".encode()
    if value is None:
        return f"{prefix}=null;".encode()
    return f"{prefix}=s{value};".encode()


# ----------------------------------------------------------------------
# The type-tag registry
# ----------------------------------------------------------------------
_MODULE_MODEL_TYPES: Dict[str, Type[ModuleModel]] = {}
_BUILTINS_LOADED = False


def register_module_model(cls: Type[ModuleModel]) -> Type[ModuleModel]:
    """Register a module-model class under its ``model_type`` tag.

    Usable as a class decorator.  Re-registering the same class is a
    no-op; a *different* class under an already-taken tag is refused —
    silently shadowing a tag would make manifests ambiguous.
    """
    tag = cls.model_type
    if not tag:
        raise ConfigurationError(
            f"{cls.__name__} must set a non-empty model_type tag"
        )
    existing = _MODULE_MODEL_TYPES.get(tag)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"module model type tag {tag!r} is already registered by "
            f"{existing.__name__}"
        )
    _MODULE_MODEL_TYPES[tag] = cls
    return cls


def _ensure_builtins() -> None:
    """Import the built-in module models so their tags are registered.

    Lazy because the module implementations import *this* module; the
    registry only needs the concrete classes at lookup time.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.teg.module  # noqa: F401  (registers on import)
    import repro.teg.segmented  # noqa: F401

    _BUILTINS_LOADED = True


def module_model_class(tag: str) -> Type[ModuleModel]:
    """The registered module-model class for one type tag."""
    _ensure_builtins()
    cls = _MODULE_MODEL_TYPES.get(tag)
    if cls is None:
        raise ConfigurationError(
            f"unknown module model type {tag!r} "
            f"(registered: {', '.join(sorted(_MODULE_MODEL_TYPES)) or 'none'})"
        )
    return cls


def registered_module_model_types() -> Dict[str, Type[ModuleModel]]:
    """Snapshot of the tag-to-class registry (built-ins included)."""
    _ensure_builtins()
    return dict(_MODULE_MODEL_TYPES)


def module_model_to_json_dict(model: ModuleModel) -> Dict[str, object]:
    """Serialise any module model as its tagged envelope."""
    _ensure_builtins()
    tag = model.model_type
    if _MODULE_MODEL_TYPES.get(tag) is not type(model):
        raise ConfigurationError(
            f"{type(model).__name__} (tag {tag!r}) is not the registered "
            f"class for its tag; call register_module_model first"
        )
    return {"type": tag, "params": model.params_dict()}


def module_model_from_json_dict(data: Mapping[str, object]) -> ModuleModel:
    """Rebuild a module model from its tagged envelope."""
    if not isinstance(data, Mapping) or "type" not in data:
        raise ConfigurationError(
            "module model JSON must be a {'type': ..., 'params': ...} "
            "envelope"
        )
    cls = module_model_class(str(data["type"]))
    return cls.from_params_dict(dict(data.get("params") or {}))
