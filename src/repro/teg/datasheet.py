"""Named TEG module parameter sets.

The paper's experimental platform uses the Kryotherm
**TGM-199-1.4-0.8** generator module (199 couples, 40 x 40 mm).  Its
Fig. 1 I-V / P-V families are reproduced by the linear Eq. (2) model
with the per-couple properties in :mod:`repro.teg.materials`:

* open-circuit voltage ~12.8 V at ``dT = 170 K``;
* internal resistance ~2.9 Ohm at radiator operating temperatures;
* MPP power ~0.5 W per module around ``dT = 35 K`` — the regime of a
  vehicle radiator, giving the ~50 W 100-module array of Table I.

A few sibling modules are included so examples and tests can exercise
heterogeneous hardware.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ModelParameterError
from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    BISMUTH_TELLURIDE_REALISTIC,
    NOMINAL_BISMUTH_SEEBECK_V_PER_K,
    CoupleMaterial,
)
from repro.teg.module import TEGModule

#: The module used throughout the paper's evaluation.
TGM_199_1_4_0_8 = TEGModule(
    name="TGM-199-1.4-0.8",
    material=BISMUTH_TELLURIDE,
    n_couples=199,
)

#: Same geometry with temperature-drifting material properties, for
#: sensitivity studies beyond the paper's constant-parameter model.
TGM_199_1_4_0_8_REALISTIC = TEGModule(
    name="TGM-199-1.4-0.8-realistic",
    material=BISMUTH_TELLURIDE_REALISTIC,
    n_couples=199,
)

#: Smaller 127-couple module (typical 30 x 30 mm generator); same
#: bismuth-telluride couple chemistry, different leg geometry.
TGM_127_1_0_0_8 = TEGModule(
    name="TGM-127-1.0-0.8",
    material=CoupleMaterial(
        seebeck_v_per_k=NOMINAL_BISMUTH_SEEBECK_V_PER_K,
        resistance_ohm=1.26e-2,
        thermal_conductance_w_per_k=3.6e-3,
    ),
    n_couples=127,
)

#: Larger 287-couple module for boiler-scale examples.
TGM_287_1_0_1_5 = TEGModule(
    name="TGM-287-1.0-1.5",
    material=CoupleMaterial(
        seebeck_v_per_k=NOMINAL_BISMUTH_SEEBECK_V_PER_K,
        resistance_ohm=2.10e-2,
        thermal_conductance_w_per_k=4.2e-3,
    ),
    n_couples=287,
)

#: Catalog of every named module, keyed by datasheet name.
MODULE_CATALOG: Dict[str, TEGModule] = {
    module.name: module
    for module in (
        TGM_199_1_4_0_8,
        TGM_199_1_4_0_8_REALISTIC,
        TGM_127_1_0_0_8,
        TGM_287_1_0_1_5,
    )
}


def get_module(name: str) -> TEGModule:
    """Look up a module by datasheet name.

    Raises
    ------
    ModelParameterError
        If the name is not in :data:`MODULE_CATALOG`; the message lists
        the available names.
    """
    try:
        return MODULE_CATALOG[name]
    except KeyError:
        available = ", ".join(sorted(MODULE_CATALOG))
        raise ModelParameterError(
            f"unknown TEG module {name!r}; available: {available}"
        ) from None
