"""Switch-fabric fault model.

Automotive switch matrices fail: a MOSFET shorts closed or an actuator
stops responding.  In the Fig. 4 fabric each junction then becomes
*stuck* in one of its two states:

* **stuck-series** — the series switch is welded shut (or the rail
  switches are stuck open): a group boundary is *forced* at that
  junction.
* **stuck-parallel** — the rail switches are welded shut: a boundary
  at that junction is *forbidden*; its two modules always share a
  group.

A :class:`FaultMask` captures the stuck set, can validate or repair
configurations against it, and plugs into the fault-aware variant of
Algorithm 1 (:func:`repro.core.fault_aware.fault_aware_inor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.teg.network import validate_starts


@dataclass(frozen=True)
class FaultMask:
    """Stuck-junction sets for an ``n_modules`` chain.

    Junction ``i`` sits between modules ``i`` and ``i + 1``;
    boundary position ``i + 1`` is the corresponding group start.

    Attributes
    ----------
    n_modules:
        Chain length.
    stuck_series:
        Junction indices whose boundary is forced.
    stuck_parallel:
        Junction indices whose boundary is forbidden.
    """

    n_modules: int
    stuck_series: FrozenSet[int] = field(default_factory=frozenset)
    stuck_parallel: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.n_modules < 1:
            raise ConfigurationError(f"n_modules must be >= 1, got {self.n_modules}")
        stuck_series = frozenset(int(j) for j in self.stuck_series)
        stuck_parallel = frozenset(int(j) for j in self.stuck_parallel)
        for junction in stuck_series | stuck_parallel:
            if not 0 <= junction < self.n_modules - 1:
                raise ConfigurationError(
                    f"junction {junction} out of range for "
                    f"{self.n_modules} modules"
                )
        if stuck_series & stuck_parallel:
            raise ConfigurationError(
                "a junction cannot be stuck both series and parallel: "
                f"{sorted(stuck_series & stuck_parallel)}"
            )
        object.__setattr__(self, "stuck_series", stuck_series)
        object.__setattr__(self, "stuck_parallel", stuck_parallel)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def healthy(cls, n_modules: int) -> "FaultMask":
        """No faults."""
        return cls(n_modules=n_modules)

    @classmethod
    def random(
        cls,
        n_modules: int,
        n_stuck_series: int,
        n_stuck_parallel: int,
        seed: int = 0,
    ) -> "FaultMask":
        """Random distinct stuck junctions (reproducible)."""
        total = n_stuck_series + n_stuck_parallel
        if total > n_modules - 1:
            raise ConfigurationError(
                f"cannot stick {total} junctions on a chain with "
                f"{n_modules - 1}"
            )
        rng = np.random.default_rng(seed)
        picks = rng.choice(n_modules - 1, size=total, replace=False)
        return cls(
            n_modules=n_modules,
            stuck_series=frozenset(int(j) for j in picks[:n_stuck_series]),
            stuck_parallel=frozenset(int(j) for j in picks[n_stuck_series:]),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_faults(self) -> int:
        """Total stuck junctions."""
        return len(self.stuck_series) + len(self.stuck_parallel)

    def forced_boundaries(self) -> Tuple[int, ...]:
        """Boundary positions (group starts) that must appear."""
        return tuple(sorted(j + 1 for j in self.stuck_series))

    def forbidden_boundaries(self) -> Tuple[int, ...]:
        """Boundary positions that must not appear."""
        return tuple(sorted(j + 1 for j in self.stuck_parallel))

    def is_feasible(self, starts: Sequence[int]) -> bool:
        """Whether a configuration respects every stuck junction."""
        idx = validate_starts(starts, self.n_modules)
        boundaries = set(int(s) for s in idx[1:])
        if any(b not in boundaries for b in self.forced_boundaries()):
            return False
        if any(b in boundaries for b in self.forbidden_boundaries()):
            return False
        return True

    def repair(self, starts: Sequence[int]) -> Tuple[int, ...]:
        """Smallest edit making a configuration feasible.

        Adds every forced boundary and drops every forbidden one —
        each stuck junction admits exactly one state, so this is the
        unique minimal repair.
        """
        idx = validate_starts(starts, self.n_modules)
        boundaries = set(int(s) for s in idx[1:])
        boundaries |= set(self.forced_boundaries())
        boundaries -= set(self.forbidden_boundaries())
        return (0,) + tuple(sorted(boundaries))
