"""Unit conventions and validation helpers.

tegkit uses plain SI floats rather than a unit-wrapper type; this module
centralises the conventions and the small validation helpers every
subpackage relies on.

Conventions
-----------
* Temperatures are degrees **Celsius** (``degC``).  Every model in the
  library depends only on temperature *differences* and Celsius offsets
  (no radiation laws), so Celsius is safe and matches the paper's
  presentation.
* Temperature differences are **kelvin** (``K``) — numerically identical
  to Celsius differences.
* Power in watts, energy in joules, time in seconds, current in amperes,
  voltage in volts, resistance in ohms.
* Mass flow in kg/s, volumetric flow in m^3/s, heat capacity rate in W/K.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ModelParameterError

#: Absolute zero expressed in Celsius; used for sanity checks only.
ABSOLUTE_ZERO_C = -273.15

#: Conversion factor litres/minute -> m^3/s, the unit pair used by the
#: flow-meter substrate.
LPM_TO_M3S = 1.0e-3 / 60.0


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a Celsius temperature to kelvin."""
    return temp_c - ABSOLUTE_ZERO_C


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a kelvin temperature to Celsius."""
    return temp_k + ABSOLUTE_ZERO_C


def lpm_to_m3s(flow_lpm: float) -> float:
    """Convert a volumetric flow from litres/minute to m^3/s."""
    return flow_lpm * LPM_TO_M3S


def m3s_to_lpm(flow_m3s: float) -> float:
    """Convert a volumetric flow from m^3/s to litres/minute."""
    return flow_m3s / LPM_TO_M3S


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise.

    Raises
    ------
    ModelParameterError
        If ``value`` is not a finite number greater than zero.
    """
    if not math.isfinite(value) or value <= 0.0:
        raise ModelParameterError(f"{name} must be finite and > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if finite and >= 0, else raise."""
    if not math.isfinite(value) or value < 0.0:
        raise ModelParameterError(f"{name} must be finite and >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ModelParameterError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def require_temperature_c(value: float, name: str) -> float:
    """Return ``value`` if it is a physically possible Celsius temperature."""
    if not math.isfinite(value) or value < ABSOLUTE_ZERO_C:
        raise ModelParameterError(
            f"{name} must be a finite Celsius temperature >= {ABSOLUTE_ZERO_C}, "
            f"got {value!r}"
        )
    return value


def require_monotonic_increasing(values: Sequence[float], name: str) -> None:
    """Raise unless ``values`` is strictly increasing.

    Used for time axes and partition boundaries.
    """
    for left, right in zip(values, values[1:]):
        if not right > left:
            raise ModelParameterError(
                f"{name} must be strictly increasing; found {left!r} before {right!r}"
            )
