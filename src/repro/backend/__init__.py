"""Pluggable array backends for the hot reduction kernels.

The decision kernels (:mod:`repro.teg.network`) funnel their remaining
segmented reductions through one entry point,
:func:`segmented_pairwise_sum`, and this package decides *what executes
it*:

* ``"numpy"`` (default) — the vectorised level-wise pairwise tree of
  :mod:`repro.backend._pairwise`.
* ``"numba"`` — a jitted per-segment twin (optional dependency).
* ``"cupy"`` — the same tree on a CUDA device (optional dependency).

Every backend is held to the same contract the scalar-vs-batched kernels
already live under: **bit-identical** to contiguous-slice
``ndarray.sum``.  The registry enforces it mechanically — before a
backend is ever handed out it must pass a one-time parity probe over a
fuzz layout of empty, tiny, 8-lane, power-of-two and recursion-depth
segment lengths (with ``-0.0`` sprinkled in, the classic reassociation
tell).  A backend that cannot import, compile or match is *unavailable*,
reported with its reason, and explicit requests for it raise
:class:`BackendUnavailableError`; it is never silently substituted.

Selection: pass ``backend=`` explicitly, or set the ``REPRO_BACKEND``
environment variable (the decision-layer ``kernel="batched:numba"``
spelling routes through here too).  Unset means NumPy.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend._pairwise import PAIRWISE_BLOCKSIZE, segmented_pairwise_sum_xp
from repro.backend._partition import (
    lift_cuts_np,
    next_cut_map_np,
    prefix_table_np,
)
from repro.errors import ConfigurationError

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "NumpyBackend",
    "PAIRWISE_BLOCKSIZE",
    "available_backends",
    "backend_unavailable_reason",
    "default_backend_name",
    "get_backend",
    "lift_cuts",
    "next_cut_map",
    "prefix_table",
    "segmented_pairwise_sum",
]

#: Environment variable naming the default backend (unset -> ``"numpy"``).
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Registered backend names, in preference order.
BACKEND_NAMES = ("numpy", "numba", "cupy")

#: Segment lengths the parity probe covers: empty, sub-lane, lane
#: boundaries, the 128-element leaf boundary and multi-level recursion.
_PROBE_LENGTHS = (
    0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 63, 64,
    127, 128, 129, 136, 137, 255, 256, 300, 511, 512, 1000,
)


class BackendUnavailableError(ConfigurationError):
    """An explicitly requested backend cannot run on this host."""


class NumpyBackend:
    """The reference backend: vectorised pairwise tree in NumPy."""

    name = "numpy"

    def segmented_pairwise_sum(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        return segmented_pairwise_sum_xp(
            np.asarray(values, dtype=np.float64), offsets, np
        )

    # Partition-build entry points (the PartitionStack pipeline of
    # repro.teg.network): the NumPy forms *are* the bit-identity
    # reference — see repro.backend._partition.
    def prefix_table(self, rows: np.ndarray) -> np.ndarray:
        return prefix_table_np(rows)

    def next_cut_map(
        self,
        prefix_rows: np.ndarray,
        row_of: np.ndarray,
        ideals: np.ndarray,
        flat_rows: np.ndarray,
    ) -> np.ndarray:
        return next_cut_map_np(prefix_rows, row_of, ideals, flat_rows)

    def lift_cuts(
        self, next_map: np.ndarray, counts: np.ndarray, n_lift: int
    ) -> np.ndarray:
        return lift_cuts_np(next_map, counts, n_lift)


def _make_numba():
    from repro.backend.numba_backend import NumbaBackend

    return NumbaBackend()


def _make_cupy():
    from repro.backend.cupy_backend import CupyBackend

    return CupyBackend()


_FACTORIES = {
    "numpy": NumpyBackend,
    "numba": _make_numba,
    "cupy": _make_cupy,
}

_instances: Dict[str, object] = {}
_failures: Dict[str, str] = {}


def _parity_probe(backend) -> Optional[str]:
    """Bitwise self-test against ``ndarray.sum``; ``None`` on success."""
    offsets = np.concatenate(
        ([0], np.cumsum(np.asarray(_PROBE_LENGTHS, dtype=np.int64)))
    )
    total = int(offsets[-1])
    rng = np.random.default_rng(20180807)
    values = rng.normal(size=total) * np.exp(rng.uniform(-6.0, 6.0, total))
    values[rng.uniform(size=total) < 0.05] = -0.0
    stacked = np.stack((values, values[::-1].copy()))
    for vals in (values, stacked):
        want = np.stack(
            [
                vals[..., lo:hi].sum(axis=-1)
                for lo, hi in zip(offsets, offsets[1:])
            ],
            axis=-1,
        )
        try:
            got = backend.segmented_pairwise_sum(vals, offsets)
        except Exception as exc:  # pragma: no cover - defect path
            return f"parity probe raised {exc!r}"
        got = np.asarray(got)
        if got.shape != want.shape or got.tobytes() != want.tobytes():
            return "parity probe mismatch against ndarray.sum"
    return _partition_probe(backend)


def _partition_probe(backend) -> Optional[str]:
    """Bitwise self-test of the partition-build entry points.

    Probes ``prefix_table`` / ``next_cut_map`` / ``lift_cuts`` against
    the NumPy reference over a fixture covering the map's edge shapes:
    a generic positive row, a row with an interior zero-current flat
    run, and a fully flat row (all prefix values tied), each with
    several group-count lanes.  ``None`` on success.
    """
    rng = np.random.default_rng(20180808)
    n_modules = 37
    rows = np.abs(rng.normal(size=(3, n_modules))) * np.exp(
        rng.uniform(-3.0, 3.0, (3, n_modules))
    )
    rows[1, 5:14] = 0.0
    rows[2] = 0.0
    flat_rows = rows.min(axis=1) == 0.0
    counts = np.array([1, 2, 3, 5, 8, 13, 2, 4, 6, 1, 7], dtype=np.int64)
    row_of = np.array([0, 0, 0, 0, 0, 0, 1, 1, 1, 2, 2], dtype=np.int64)
    n_lift = int(counts.max())
    prefix_want = prefix_table_np(rows)
    ideals = rows.sum(axis=1)[row_of] / counts
    next_want = next_cut_map_np(prefix_want, row_of, ideals, flat_rows)
    cuts_want = lift_cuts_np(next_want, counts, n_lift)
    try:
        prefix_got = np.asarray(backend.prefix_table(rows))
        next_got = np.asarray(
            backend.next_cut_map(prefix_want, row_of, ideals, flat_rows)
        )
        cuts_got = np.asarray(backend.lift_cuts(next_want, counts, n_lift))
    except Exception as exc:  # pragma: no cover - defect path
        return f"partition probe raised {exc!r}"
    for got, want, label in (
        (prefix_got, prefix_want, "prefix_table"),
        (next_got, next_want, "next_cut_map"),
        (cuts_got, cuts_want, "lift_cuts"),
    ):
        if got.shape != want.shape or got.tobytes() != want.tobytes():
            return f"partition probe mismatch in {label}"
    return None


def backend_unavailable_reason(name: str) -> Optional[str]:
    """Why ``name`` cannot be used here, or ``None`` if it can.

    Construction (import + compile) and the parity probe run once per
    process; the verdict is cached either way.
    """
    if name not in _FACTORIES:
        raise ConfigurationError(
            f"unknown backend {name!r} (known: {', '.join(BACKEND_NAMES)})"
        )
    if name in _instances:
        return None
    if name in _failures:
        return _failures[name]
    try:
        backend = _FACTORIES[name]()
    except Exception as exc:
        _failures[name] = f"{type(exc).__name__}: {exc}"
        return _failures[name]
    reason = _parity_probe(backend)
    if reason is not None:
        _failures[name] = reason
        return reason
    _instances[name] = backend
    return None


def available_backends() -> Tuple[str, ...]:
    """Names of every backend that imports, compiles and passes parity."""
    return tuple(
        name for name in BACKEND_NAMES if backend_unavailable_reason(name) is None
    )


def default_backend_name() -> str:
    """The session default: ``$REPRO_BACKEND`` or ``"numpy"``."""
    return os.environ.get(BACKEND_ENV_VAR, "").strip() or "numpy"


def get_backend(name: Optional[str] = None):
    """Resolve a backend instance by name (``None`` -> session default).

    Raises
    ------
    ConfigurationError
        For names outside :data:`BACKEND_NAMES`.
    BackendUnavailableError
        For known backends that cannot run here (missing wheel, no
        device, failed parity probe) — requests never degrade silently.
    """
    if name is None:
        name = default_backend_name()
    reason = backend_unavailable_reason(name)
    if reason is not None:
        raise BackendUnavailableError(
            f"backend {name!r} is unavailable on this host: {reason}"
        )
    return _instances[name]


def segmented_pairwise_sum(
    values: np.ndarray,
    offsets: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Sum every ``values[..., lo:hi]`` segment, bitwise like ``ndarray.sum``.

    ``offsets`` is an ``(S + 1,)`` non-decreasing boundary vector into
    the last axis of ``values``; the result has shape ``(..., S)``.
    ``backend`` picks the executing implementation (default: the
    ``REPRO_BACKEND`` environment variable, else NumPy) — all backends
    are bit-identical, so the choice is speed, never results.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ConfigurationError(
            f"offsets must be a non-empty 1-D vector, got shape {offsets.shape}"
        )
    length = np.asarray(values).shape[-1] if np.asarray(values).ndim else 0
    if (
        offsets[0] < 0
        or offsets[-1] > length
        or np.any(offsets[1:] < offsets[:-1])
    ):
        raise ConfigurationError(
            f"offsets must be non-decreasing within [0, {length}], got "
            f"{offsets.tolist()[:8]}..."
        )
    return get_backend(backend).segmented_pairwise_sum(values, offsets)


def prefix_table(
    rows: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Zero-led per-row cumulative prefix table of a ``(C, N)`` matrix.

    First stage of the ``PartitionStack`` build: ``prefix[c, j] =
    sum(rows[c, :j])``, so any contiguous group sum is a prefix
    difference.  ``backend`` picks the executing implementation — all
    backends are bit-identical to the NumPy ``np.cumsum`` form, so the
    choice is speed, never results.
    """
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2:
        raise ConfigurationError(
            f"rows must be a (C, N) matrix, got shape {rows.shape}"
        )
    return get_backend(backend).prefix_table(rows)


def next_cut_map(
    prefix_rows: np.ndarray,
    row_of: np.ndarray,
    ideals: np.ndarray,
    flat_rows: np.ndarray,
    backend: Optional[str] = None,
) -> np.ndarray:
    """Greedy next-cut map over a prefix table, one row per lane.

    Second stage of the ``PartitionStack`` build: for every lane ``k``
    (searching case row ``row_of[k]`` with per-group ideal
    ``ideals[k]``) and every start position, the bracketing
    ``searchsorted`` bound with the walk's tie rule, floor/saturation
    clamps and the flat-run extension for rows flagged in
    ``flat_rows``.  Integer-exact apart from the tie comparison, which
    every backend evaluates on the identical doubles.
    """
    prefix_rows = np.ascontiguousarray(prefix_rows, dtype=np.float64)
    row_of = np.asarray(row_of, dtype=np.int64)
    ideals = np.asarray(ideals, dtype=np.float64)
    flat_rows = np.asarray(flat_rows, dtype=bool)
    if prefix_rows.ndim != 2 or row_of.shape != ideals.shape:
        raise ConfigurationError(
            f"next_cut_map needs a (C, N+1) prefix table and matching "
            f"(K,) lane vectors, got {prefix_rows.shape} / "
            f"{row_of.shape} / {ideals.shape}"
        )
    return get_backend(backend).next_cut_map(
        prefix_rows, row_of, ideals, flat_rows
    )


def lift_cuts(
    next_map: np.ndarray,
    counts: np.ndarray,
    n_lift: int,
    backend: Optional[str] = None,
) -> np.ndarray:
    """All ``n_lift`` walk iterates of a per-lane next-cut map.

    Third stage of the ``PartitionStack`` build: ``cuts[k, j] =
    nxt_k^j(0)`` (binary lifting in the NumPy form, direct iteration in
    the scalar twins — identical integers either way), tail-clamped so
    every remaining group keeps at least one module.
    """
    next_map = np.ascontiguousarray(next_map, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if next_map.ndim != 2 or counts.shape != (next_map.shape[0],):
        raise ConfigurationError(
            f"lift_cuts needs a (K, N+1) next-cut map and a (K,) count "
            f"vector, got {next_map.shape} / {counts.shape}"
        )
    n_lift = int(n_lift)
    if n_lift < 1:
        raise ConfigurationError(f"n_lift must be >= 1, got {n_lift}")
    return get_backend(backend).lift_cuts(next_map, counts, n_lift)
