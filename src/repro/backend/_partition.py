"""NumPy reference implementations of the partition-build entry points.

The greedy balanced-partition build of
:func:`repro.teg.network.partition_multi_stack` decomposes into three
array passes — the cumulative-current **prefix table**, the row-wise
searchsorted **next-cut map** (with the walk's tie rule and flat-run
extension), and the **binary-lifting** iteration of that map — and this
module holds the NumPy forms the backend registry treats as the
bit-identity reference.  The expression trees here are lifted verbatim
from the original inline pipeline, so routing the build through the
backend seam changes *where* the arithmetic executes, never which
doubles it produces.

Only the prefix table and the tie-rule comparison touch floating point;
the next-cut binary search and the lifting gathers are integer-exact,
which is what lets the jitted twins in
:mod:`repro.backend.numba_backend` match bitwise with scalar loops.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np


@lru_cache(maxsize=128)
def _index_arange(n: int) -> np.ndarray:
    """A shared, read-only ``arange(n)`` (hot-path index scaffolding)."""
    indices = np.arange(n, dtype=np.int64)
    indices.setflags(write=False)
    return indices


@lru_cache(maxsize=128)
def _lift_plan(n_max: int) -> Tuple[Tuple[int, np.ndarray], ...]:
    """Binary-lifting schedule: per bit, the read-only column indices
    (iterate numbers ``j < n_max`` with that bit set)."""
    j_index = _index_arange(n_max)
    plan = []
    bit = 1
    while bit < n_max:
        columns = j_index[(j_index & bit) != 0]
        columns.setflags(write=False)
        plan.append((bit, columns))
        bit <<= 1
    return tuple(plan)


def searchsorted_rows_right(
    table_rows: np.ndarray, row_of: np.ndarray, targets: np.ndarray
) -> np.ndarray:
    """Row-wise ``searchsorted(side="right")`` across many tables.

    ``table_rows`` is ``(C, M)``, every row sorted ascending;
    ``targets`` is ``(K, T)`` and ``row_of[k]`` names the table row the
    ``k``-th target row searches.  A vectorised binary search over all
    targets at once — integer-exact, so results equal
    ``np.searchsorted(table_rows[row_of[k]], targets[k], "right")`` per
    row, with no Python loop over rows.
    """
    n_cols = table_rows.shape[1]
    flat = table_rows.reshape(-1)
    base = (row_of * n_cols)[:, None]
    lo = np.zeros(targets.shape, dtype=np.int64)
    hi = np.full(targets.shape, n_cols, dtype=np.int64)
    open_mask = lo < hi
    while open_mask.any():
        # Closed lanes keep lo == hi (possibly n_cols); park their
        # gather at 0 so the flat read stays in bounds.
        mid = np.where(open_mask, (lo + hi) >> 1, 0)
        advance = open_mask & (flat[base + mid] <= targets)
        lo = np.where(advance, mid + 1, lo)
        hi = np.where(open_mask & ~advance, mid, hi)
        open_mask = lo < hi
    return lo


def prefix_table_np(rows: np.ndarray) -> np.ndarray:
    """Per-row cumulative-current prefix table, zero-led.

    ``prefix[c, j] = sum(rows[c, :j])`` via ``np.cumsum`` — the
    sequential accumulation the scalar walk's group sums bracket
    against (``sum(rows[c, pos:cut]) = prefix[c, cut] - prefix[c, pos]``).
    """
    n_cases = rows.shape[0]
    return np.concatenate(
        (np.zeros((n_cases, 1)), np.cumsum(rows, axis=1)), axis=1
    )


def next_cut_map_np(
    prefix_rows: np.ndarray,
    row_of: np.ndarray,
    ideals: np.ndarray,
    flat_rows: np.ndarray,
) -> np.ndarray:
    """The pure next-cut map, all lanes x all positions.

    ``prefix_rows`` is the ``(C, N + 1)`` prefix table, ``row_of[k]``
    the case row lane ``k`` searches, ``ideals[k]`` its per-group ideal
    current sum and ``flat_rows`` a ``(C,)`` boolean marking rows with
    zero-current flat runs.  Returns the ``(K, N + 1)`` map
    ``nxt[k, pos]`` = greedy cut after a group starting at ``pos``:
    the bracketing searchsorted bound, the walk's lower-cut-wins tie
    rule, the one-module-per-group floor and the saturation clamp at
    ``N``, plus the flat-run extension through equal prefix values.
    """
    n_cases = prefix_rows.shape[0]
    n_modules = prefix_rows.shape[1] - 1
    # targets[k, c] = P[c] + I_ideal_k; bound = first prefix entry
    # strictly above it, so (bound-1, bound) bracket the target.
    targets = prefix_rows[row_of] + ideals[:, None]
    bound = searchsorted_rows_right(prefix_rows, row_of, targets)
    # Walk tie rule via the bracket midpoint: the lower cut wins only
    # on strictly smaller error, i.e. P[bound] + P[bound-1] > 2*target
    # (prefix is padded with +inf so bound = N+1 resolves below).
    padded = np.concatenate(
        (prefix_rows, np.full((n_cases, 1), np.inf)), axis=1
    )
    padded_flat = padded.reshape(-1)
    prefix_flat = prefix_rows.reshape(-1)
    pad_base = (row_of * (n_modules + 2))[:, None]
    pre_base = (row_of * (n_modules + 1))[:, None]
    nxt = bound - (
        padded_flat[pad_base + bound]
        + prefix_flat[pre_base + bound - 1]
        > 2.0 * targets
    )
    np.maximum(nxt, _index_arange(n_modules + 2)[None, 1:], out=nxt)
    np.minimum(nxt, n_modules, out=nxt)
    flat_sel = np.flatnonzero(flat_rows[row_of])
    if flat_sel.size:
        # Zero-current flat runs: equal prefix value means equal error,
        # and the walk extends through ties — jump to the run's end.
        sub_rows = row_of[flat_sel]
        sub_base = (sub_rows * (n_modules + 1))[:, None]
        nxt[flat_sel] = (
            searchsorted_rows_right(
                prefix_rows, sub_rows, prefix_flat[sub_base + nxt[flat_sel]]
            )
            - 1
        )
    return nxt


def lift_cuts_np(
    next_map: np.ndarray, counts: np.ndarray, n_lift: int
) -> np.ndarray:
    """All walk iterates of the next-cut map, by binary lifting.

    ``cuts[k, j] = nxt_k^j(0)``; column ``j`` is assembled from the
    powers ``nxt^(2^b)`` selected by ``j``'s bits (composition of
    powers commutes).  Gathers run on the flattened map with per-lane
    row offsets — a direct C-level take.  The trailing clamp
    ``min(cut_j, N - n + j)`` keeps every remaining group non-empty;
    the map's monotonicity makes it equivalent to clamping per step.
    """
    n_lanes = next_map.shape[0]
    n_modules = next_map.shape[1] - 1
    cuts = np.zeros((n_lanes, n_lift), dtype=np.int64)
    row_base = (_index_arange(n_lanes) * (n_modules + 1))[:, None]
    doubling = next_map
    flat = doubling.reshape(-1)
    lift_plan = _lift_plan(n_lift)
    for step, (bit, columns) in enumerate(lift_plan):
        cuts[:, columns] = flat[cuts[:, columns] + row_base]
        if step + 1 < len(lift_plan):
            doubling = flat[doubling + row_base]
            flat = doubling.reshape(-1)
    np.minimum(
        cuts,
        (n_modules - counts)[:, None] + _index_arange(n_lift)[None, :],
        out=cuts,
    )
    return cuts
