"""Vectorised segmented pairwise summation — ``ndarray.sum``'s bitwise twin.

The decision kernels replace per-candidate ``values[lo:hi].sum()`` loops
with one call that reduces *every* segment of a ragged layout at once.
Because the repository's parity contract pins decisions bit-for-bit
against scalar references that use ``ndarray.sum``, the replacement must
reproduce NumPy's *pairwise* summation — the exact tree in
``numpy/_core/src/umath/loops_utils.h`` — not merely a mathematically
equal reduction:

* ``n < 8``: a zero-initialised sequential accumulation.
* ``8 <= n <= 128``: eight zero-initialised lanes absorb the leading
  full 8-blocks (``r[k] += a[i + k]``), combine as
  ``((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7))``, and the ``n % 8`` tail is
  added sequentially.
* ``n > 128``: split at ``n2 = (n//2) - (n//2) % 8`` and add the two
  halves' recursive sums.

The implementation below walks that tree *level-wise over all segments
simultaneously*: the split schedule is pure integer bookkeeping (done in
host NumPy), while every floating-point add runs as one array operation
across segments — and across any leading batch axes of ``values``.  All
float adds are explicit (never ``xp.sum``), so any array namespace whose
elementwise ``+`` is IEEE-754 double addition (NumPy, CuPy) produces
bit-identical results.

A subtlety worth recording: masked accumulation must use fancy-indexed
in-place adds on the *active* subset, never ``res += where(mask, x, 0.0)``
— adding a literal ``0.0`` flips ``-0.0`` partial sums to ``+0.0`` and
breaks bit-parity on all-negative-zero segments.
"""

from __future__ import annotations

import numpy as np

#: Leaf size of NumPy's pairwise summation: runs of at most this many
#: elements are reduced by the unrolled 8-lane loop, longer runs split.
PAIRWISE_BLOCKSIZE = 128


def segmented_pairwise_sum_xp(values, offsets: np.ndarray, xp=np):
    """Sum every ``values[..., offsets[k]:offsets[k+1]]`` slice at once.

    Parameters
    ----------
    values:
        ``(..., T)`` float64 array in the ``xp`` namespace (leading axes
        broadcast through untouched).
    offsets:
        Host ``(S + 1,)`` non-decreasing int64 segment boundaries into
        the last axis.  Empty segments sum to ``+0.0`` like
        ``ndarray.sum`` of an empty slice.
    xp:
        Array namespace carrying the floating-point work (``numpy`` by
        default; ``cupy`` runs the same tree on device).

    Returns
    -------
    ``(..., S)`` array, bit-identical per segment to
    ``values[..., lo:hi].sum(axis=-1)``.
    """
    starts = offsets[:-1]
    lens = offsets[1:] - starts
    return _node_sums(values, starts, lens, xp)


def _node_sums(values, starts: np.ndarray, lens: np.ndarray, xp):
    """Pairwise sums of arbitrary-length nodes (one tree level per call)."""
    big = lens > PAIRWISE_BLOCKSIZE
    if not big.any():
        return _leaf_sums(values, starts, lens, xp)
    out = xp.empty(values.shape[:-1] + (lens.size,), dtype=np.float64)
    small_sel = np.flatnonzero(~big)
    if small_sel.size:
        out[..., xp.asarray(small_sel)] = _leaf_sums(
            values, starts[small_sel], lens[small_sel], xp
        )
    big_sel = np.flatnonzero(big)
    big_starts = starts[big_sel]
    big_lens = lens[big_sel]
    half = big_lens // 2
    half -= half % 8
    # One recursive call covers both halves of every big node, so the
    # recursion depth is the tree depth, not the node count.
    child = _node_sums(
        values,
        np.concatenate((big_starts, big_starts + half)),
        np.concatenate((half, big_lens - half)),
        xp,
    )
    n_big = big_sel.size
    out[..., xp.asarray(big_sel)] = child[..., :n_big] + child[..., n_big:]
    return out


def _leaf_sums(values, starts: np.ndarray, lens: np.ndarray, xp):
    """Pairwise sums of nodes no longer than :data:`PAIRWISE_BLOCKSIZE`."""
    lead = values.shape[:-1]
    res = xp.zeros(lead + (lens.size,), dtype=np.float64)
    if lens.size == 0:
        return res
    tiny_sel = np.flatnonzero(lens < 8)
    if tiny_sel.size:
        tiny_starts = starts[tiny_sel]
        tiny_lens = lens[tiny_sel]
        # res starts at +0.0 and absorbs elements one step at a time —
        # NumPy's n < 8 path, including the empty-slice +0.0.
        for step in range(int(tiny_lens.max())):
            live = np.flatnonzero(tiny_lens > step)
            cols = xp.asarray(tiny_sel[live])
            res[..., cols] += values[..., xp.asarray(tiny_starts[live] + step)]
    blk_sel = np.flatnonzero(lens >= 8)
    if blk_sel.size:
        blk_starts = starts[blk_sel]
        blk_lens = lens[blk_sel]
        lane = np.arange(8, dtype=np.int64)[None, :]
        # Zero-initialised lanes + the head block: r[k] = 0.0 + a[k].
        acc = xp.zeros(lead + (blk_sel.size, 8), dtype=np.float64)
        acc += values[..., xp.asarray(blk_starts[:, None] + lane)]
        n_blocks = blk_lens // 8  # full 8-blocks, head included
        for block in range(1, int(n_blocks.max())):
            live = np.flatnonzero(n_blocks > block)
            idx = xp.asarray(blk_starts[live, None] + 8 * block + lane)
            acc[..., xp.asarray(live), :] += values[..., idx]
        # The fixed lane combine: ((r0+r1)+(r2+r3)) + ((r4+r5)+(r6+r7)).
        pair = acc[..., 0::2] + acc[..., 1::2]
        quad = pair[..., 0::2] + pair[..., 1::2]
        blk_res = quad[..., 0] + quad[..., 1]
        rem = blk_lens % 8
        tail = blk_starts + blk_lens - rem
        for step in range(int(rem.max())):
            live = np.flatnonzero(rem > step)
            cols = xp.asarray(live)
            blk_res[..., cols] += values[..., xp.asarray(tail[live] + step)]
        res[..., xp.asarray(blk_sel)] = blk_res
    return res
