"""CuPy backend: the vectorised pairwise tree on a CUDA device.

Reuses the exact level-wise tree of
:mod:`repro.backend._pairwise` with ``xp = cupy``: the split schedule is
host-side integer bookkeeping either way, and every floating-point add
is an explicit elementwise IEEE-754 double addition, which the GPU
performs bit-identically to the CPU.  Inputs arrive as host arrays and
results are returned as host arrays, so callers never see device
objects; the device round-trip only pays off for boiler-scale segment
counts, which is exactly the regime the backend exists for.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where a CUDA stack exists
    import cupy
except ImportError:  # pragma: no cover
    cupy = None

from repro.backend._pairwise import segmented_pairwise_sum_xp


class CupyBackend:
    """Device-resident segmented pairwise sums, host in/out."""

    name = "cupy"

    def __init__(self) -> None:
        if cupy is None:
            raise ImportError("cupy is not installed")
        # Fail fast (and let the registry mark the backend unavailable)
        # on hosts with the wheel but no usable device.
        cupy.cuda.runtime.getDeviceCount()

    def segmented_pairwise_sum(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        device_values = cupy.asarray(np.asarray(values, dtype=np.float64))
        device_out = segmented_pairwise_sum_xp(device_values, offsets, cupy)
        return cupy.asnumpy(device_out)
