"""CuPy backend: the vectorised pairwise tree on a CUDA device.

Reuses the exact level-wise tree of
:mod:`repro.backend._pairwise` with ``xp = cupy``: the split schedule is
host-side integer bookkeeping either way, and every floating-point add
is an explicit elementwise IEEE-754 double addition, which the GPU
performs bit-identically to the CPU.  Inputs arrive as host arrays and
results are returned as host arrays, so callers never see device
objects; the device round-trip only pays off for boiler-scale segment
counts, which is exactly the regime the backend exists for.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where a CUDA stack exists
    import cupy
except ImportError:  # pragma: no cover
    cupy = None

from repro.backend._pairwise import segmented_pairwise_sum_xp
from repro.backend._partition import (
    lift_cuts_np,
    next_cut_map_np,
    prefix_table_np,
)


class CupyBackend:
    """Device-resident segmented pairwise sums, host in/out."""

    name = "cupy"

    def __init__(self) -> None:
        if cupy is None:
            raise ImportError("cupy is not installed")
        # Fail fast (and let the registry mark the backend unavailable)
        # on hosts with the wheel but no usable device.
        cupy.cuda.runtime.getDeviceCount()

    def segmented_pairwise_sum(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        device_values = cupy.asarray(np.asarray(values, dtype=np.float64))
        device_out = segmented_pairwise_sum_xp(device_values, offsets, cupy)
        return cupy.asnumpy(device_out)

    # The partition-build entry points are integer-dominated binary
    # searches and index gathers over small decision-epoch tables; a
    # device round-trip per epoch would cost more than the work, so the
    # CUDA backend runs the (bit-identical) NumPy reference forms on
    # the host.
    def prefix_table(self, rows: np.ndarray) -> np.ndarray:
        return prefix_table_np(np.asarray(rows, dtype=np.float64))

    def next_cut_map(
        self,
        prefix_rows: np.ndarray,
        row_of: np.ndarray,
        ideals: np.ndarray,
        flat_rows: np.ndarray,
    ) -> np.ndarray:
        return next_cut_map_np(prefix_rows, row_of, ideals, flat_rows)

    def lift_cuts(
        self, next_map: np.ndarray, counts: np.ndarray, n_lift: int
    ) -> np.ndarray:
        return lift_cuts_np(
            np.ascontiguousarray(next_map, dtype=np.int64), counts, n_lift
        )
