"""Numba-jitted backend for the segmented pairwise reduction.

A scalar re-statement of NumPy's pairwise summation tree, compiled per
segment: the float expression tree is written out explicitly (no
``fastmath``), so LLVM may not reassociate and the compiled reduction
stays bit-identical to ``ndarray.sum`` — the property the registry's
parity probe checks before the backend is ever handed out.

The tree recursion is unrolled onto explicit stacks: self-recursive
``njit`` functions type-infer less robustly across Numba versions than a
flat loop, and the stack depth is bounded by the split schedule (the
node length at least halves every level, so 128 frames cover any
addressable array).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where the wheel is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None

_STACK_FRAMES = 128


def _build_segmented_kernel():
    """Compile and return the ``(rows, offsets, out)`` kernel."""

    @numba.njit(cache=False)
    def leaf_sum(row, lo, n):  # pragma: no cover - compiled
        if n < 8:
            res = 0.0
            for i in range(n):
                res += row[lo + i]
            return res
        r0 = 0.0 + row[lo]
        r1 = 0.0 + row[lo + 1]
        r2 = 0.0 + row[lo + 2]
        r3 = 0.0 + row[lo + 3]
        r4 = 0.0 + row[lo + 4]
        r5 = 0.0 + row[lo + 5]
        r6 = 0.0 + row[lo + 6]
        r7 = 0.0 + row[lo + 7]
        i = 8
        limit = n - (n % 8)
        while i < limit:
            r0 += row[lo + i]
            r1 += row[lo + i + 1]
            r2 += row[lo + i + 2]
            r3 += row[lo + i + 3]
            r4 += row[lo + i + 4]
            r5 += row[lo + i + 5]
            r6 += row[lo + i + 6]
            r7 += row[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += row[lo + i]
            i += 1
        return res

    @numba.njit(cache=False)
    def pairwise_sum(row, lo0, n0):  # pragma: no cover - compiled
        if n0 <= 128:
            return leaf_sum(row, lo0, n0)
        lo_stack = np.empty(_STACK_FRAMES, np.int64)
        n_stack = np.empty(_STACK_FRAMES, np.int64)
        op_stack = np.empty(_STACK_FRAMES, np.int64)  # 0 expand, 1 combine
        val_stack = np.empty(_STACK_FRAMES, np.float64)
        lo_stack[0] = lo0
        n_stack[0] = n0
        op_stack[0] = 0
        sp = 1
        vp = 0
        while sp > 0:
            sp -= 1
            if op_stack[sp] == 1:
                # Children left the left sum at vp-2, the right at vp-1;
                # left + right is the recursion's combine order.
                val_stack[vp - 2] = val_stack[vp - 2] + val_stack[vp - 1]
                vp -= 1
                continue
            lo = lo_stack[sp]
            n = n_stack[sp]
            if n <= 128:
                val_stack[vp] = leaf_sum(row, lo, n)
                vp += 1
                continue
            n2 = n // 2
            n2 -= n2 % 8
            op_stack[sp] = 1  # combine marker under the children
            sp += 1
            lo_stack[sp] = lo + n2
            n_stack[sp] = n - n2
            op_stack[sp] = 0
            sp += 1
            lo_stack[sp] = lo
            n_stack[sp] = n2
            op_stack[sp] = 0
            sp += 1
        return val_stack[0]

    @numba.njit(cache=False)
    def segmented(rows, offsets, out):  # pragma: no cover - compiled
        for r in range(rows.shape[0]):
            row = rows[r]
            for s in range(offsets.size - 1):
                out[r, s] = pairwise_sum(row, offsets[s], offsets[s + 1] - offsets[s])

    return segmented


class NumbaBackend:
    """Per-segment jitted pairwise sums (CPU, no array temporaries)."""

    name = "numba"

    def __init__(self) -> None:
        if numba is None:
            raise ImportError("numba is not installed")
        self._segmented = _build_segmented_kernel()

    def segmented_pairwise_sum(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        values = np.ascontiguousarray(values, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        lead = values.shape[:-1]
        rows = values.reshape(-1, values.shape[-1] if values.ndim else 0)
        out = np.empty((rows.shape[0], offsets.size - 1), dtype=np.float64)
        self._segmented(rows, offsets, out)
        return out.reshape(lead + (offsets.size - 1,))
