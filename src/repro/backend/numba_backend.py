"""Numba-jitted backend for the segmented pairwise reduction.

A scalar re-statement of NumPy's pairwise summation tree, compiled per
segment: the float expression tree is written out explicitly (no
``fastmath``), so LLVM may not reassociate and the compiled reduction
stays bit-identical to ``ndarray.sum`` — the property the registry's
parity probe checks before the backend is ever handed out.

The tree recursion is unrolled onto explicit stacks: self-recursive
``njit`` functions type-infer less robustly across Numba versions than a
flat loop, and the stack depth is bounded by the split schedule (the
node length at least halves every level, so 128 frames cover any
addressable array).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where the wheel is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None

_STACK_FRAMES = 128


def _build_segmented_kernel():
    """Compile and return the ``(rows, offsets, out)`` kernel."""

    @numba.njit(cache=False)
    def leaf_sum(row, lo, n):  # pragma: no cover - compiled
        if n < 8:
            res = 0.0
            for i in range(n):
                res += row[lo + i]
            return res
        r0 = 0.0 + row[lo]
        r1 = 0.0 + row[lo + 1]
        r2 = 0.0 + row[lo + 2]
        r3 = 0.0 + row[lo + 3]
        r4 = 0.0 + row[lo + 4]
        r5 = 0.0 + row[lo + 5]
        r6 = 0.0 + row[lo + 6]
        r7 = 0.0 + row[lo + 7]
        i = 8
        limit = n - (n % 8)
        while i < limit:
            r0 += row[lo + i]
            r1 += row[lo + i + 1]
            r2 += row[lo + i + 2]
            r3 += row[lo + i + 3]
            r4 += row[lo + i + 4]
            r5 += row[lo + i + 5]
            r6 += row[lo + i + 6]
            r7 += row[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += row[lo + i]
            i += 1
        return res

    @numba.njit(cache=False)
    def pairwise_sum(row, lo0, n0):  # pragma: no cover - compiled
        if n0 <= 128:
            return leaf_sum(row, lo0, n0)
        lo_stack = np.empty(_STACK_FRAMES, np.int64)
        n_stack = np.empty(_STACK_FRAMES, np.int64)
        op_stack = np.empty(_STACK_FRAMES, np.int64)  # 0 expand, 1 combine
        val_stack = np.empty(_STACK_FRAMES, np.float64)
        lo_stack[0] = lo0
        n_stack[0] = n0
        op_stack[0] = 0
        sp = 1
        vp = 0
        while sp > 0:
            sp -= 1
            if op_stack[sp] == 1:
                # Children left the left sum at vp-2, the right at vp-1;
                # left + right is the recursion's combine order.
                val_stack[vp - 2] = val_stack[vp - 2] + val_stack[vp - 1]
                vp -= 1
                continue
            lo = lo_stack[sp]
            n = n_stack[sp]
            if n <= 128:
                val_stack[vp] = leaf_sum(row, lo, n)
                vp += 1
                continue
            n2 = n // 2
            n2 -= n2 % 8
            op_stack[sp] = 1  # combine marker under the children
            sp += 1
            lo_stack[sp] = lo + n2
            n_stack[sp] = n - n2
            op_stack[sp] = 0
            sp += 1
            lo_stack[sp] = lo
            n_stack[sp] = n2
            op_stack[sp] = 0
            sp += 1
        return val_stack[0]

    @numba.njit(cache=False)
    def segmented(rows, offsets, out):  # pragma: no cover - compiled
        for r in range(rows.shape[0]):
            row = rows[r]
            for s in range(offsets.size - 1):
                out[r, s] = pairwise_sum(row, offsets[s], offsets[s + 1] - offsets[s])

    return segmented


def _build_partition_kernels():
    """Compile the partition-build twins (prefix / next-cut / lift).

    Scalar restatements of the NumPy forms in
    :mod:`repro.backend._partition`.  The prefix table is a sequential
    per-row accumulation — exactly ``np.cumsum``'s order.  The next-cut
    map's binary search is integer-exact and its one floating-point
    comparison (the walk tie rule ``P[bound] + P[bound-1] >
    2*target``) evaluates the identical add/multiply tree on the
    identical doubles.  The lift twin iterates the map directly
    instead of binary lifting — same function composition, so the same
    integers — and applies the identical tail clamp.
    """

    @numba.njit(cache=False)
    def prefix_kernel(rows, out):  # pragma: no cover - compiled
        for c in range(rows.shape[0]):
            out[c, 0] = 0.0
            acc = 0.0
            for j in range(rows.shape[1]):
                acc = acc + rows[c, j]
                out[c, j + 1] = acc

    @numba.njit(cache=False)
    def next_cut_kernel(
        prefix_rows, row_of, ideals, flat_rows, out
    ):  # pragma: no cover - compiled
        n_modules = prefix_rows.shape[1] - 1
        for k in range(row_of.size):
            r = row_of[k]
            ideal = ideals[k]
            is_flat = flat_rows[r]
            for pos in range(n_modules + 1):
                target = prefix_rows[r, pos] + ideal
                # searchsorted(side="right") over prefix_rows[r].
                lo = 0
                hi = n_modules + 1
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if prefix_rows[r, mid] <= target:
                        lo = mid + 1
                    else:
                        hi = mid
                bound = lo
                # Tie rule: the prefix table is conceptually padded
                # with +inf at column N+1.  bound >= 1 always (the
                # zero-led prefix and a non-negative target guarantee
                # it), so the bound-1 read stays in row.
                if bound > n_modules:
                    above = np.inf
                else:
                    above = prefix_rows[r, bound]
                below = prefix_rows[r, bound - 1]
                nxt = bound
                if above + below > 2.0 * target:
                    nxt -= 1
                if nxt < pos + 1:
                    nxt = pos + 1
                if nxt > n_modules:
                    nxt = n_modules
                if is_flat:
                    # Flat-run extension: jump to the end of the run of
                    # prefix entries equal to prefix[nxt].
                    value = prefix_rows[r, nxt]
                    lo = 0
                    hi = n_modules + 1
                    while lo < hi:
                        mid = (lo + hi) >> 1
                        if prefix_rows[r, mid] <= value:
                            lo = mid + 1
                        else:
                            hi = mid
                    nxt = lo - 1
                out[k, pos] = nxt

    @numba.njit(cache=False)
    def lift_kernel(next_map, counts, out):  # pragma: no cover - compiled
        n_modules = next_map.shape[1] - 1
        n_lift = out.shape[1]
        for k in range(next_map.shape[0]):
            cur = 0
            out[k, 0] = 0
            for j in range(1, n_lift):
                cur = next_map[k, cur]
                out[k, j] = cur
            floor = n_modules - counts[k]
            for j in range(n_lift):
                if out[k, j] > floor + j:
                    out[k, j] = floor + j

    return prefix_kernel, next_cut_kernel, lift_kernel


class NumbaBackend:
    """Per-segment jitted pairwise sums (CPU, no array temporaries)."""

    name = "numba"

    def __init__(self) -> None:
        if numba is None:
            raise ImportError("numba is not installed")
        self._segmented = _build_segmented_kernel()
        (
            self._prefix,
            self._next_cut,
            self._lift,
        ) = _build_partition_kernels()

    def segmented_pairwise_sum(
        self, values: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        values = np.ascontiguousarray(values, dtype=np.float64)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        lead = values.shape[:-1]
        rows = values.reshape(-1, values.shape[-1] if values.ndim else 0)
        out = np.empty((rows.shape[0], offsets.size - 1), dtype=np.float64)
        self._segmented(rows, offsets, out)
        return out.reshape(lead + (offsets.size - 1,))

    def prefix_table(self, rows: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows, dtype=np.float64)
        out = np.empty((rows.shape[0], rows.shape[1] + 1), dtype=np.float64)
        self._prefix(rows, out)
        return out

    def next_cut_map(
        self,
        prefix_rows: np.ndarray,
        row_of: np.ndarray,
        ideals: np.ndarray,
        flat_rows: np.ndarray,
    ) -> np.ndarray:
        prefix_rows = np.ascontiguousarray(prefix_rows, dtype=np.float64)
        row_of = np.ascontiguousarray(row_of, dtype=np.int64)
        ideals = np.ascontiguousarray(ideals, dtype=np.float64)
        flat_rows = np.ascontiguousarray(flat_rows, dtype=np.bool_)
        out = np.empty(
            (row_of.size, prefix_rows.shape[1]), dtype=np.int64
        )
        self._next_cut(prefix_rows, row_of, ideals, flat_rows, out)
        return out

    def lift_cuts(
        self, next_map: np.ndarray, counts: np.ndarray, n_lift: int
    ) -> np.ndarray:
        next_map = np.ascontiguousarray(next_map, dtype=np.int64)
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        out = np.empty((next_map.shape[0], int(n_lift)), dtype=np.int64)
        self._lift(next_map, counts, out)
        return out
