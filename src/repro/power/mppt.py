"""Perturb & observe maximum power point tracking (Femia et al. [10]).

The charger modulates the array current and watches the output power:
if the last perturbation increased power it keeps going, otherwise it
reverses.  For the linear TEG array the P-I curve is a concave
parabola, so P&O converges to a limit cycle around the true MPP; the
tracker below also supports step-halving, which collapses the limit
cycle and yields convergence to arbitrary tolerance.

The closed-loop simulator uses the analytic MPP (exact for the linear
model — see :func:`repro.teg.network.array_mpp`); this tracker exists
to validate that choice, to model the MPPT settle time that enters the
switching-overhead budget, and for use with non-analytic power
functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.errors import ModelParameterError
from repro.units import require_positive


@dataclass(frozen=True)
class MPPTResult:
    """Outcome of a tracking run.

    Attributes
    ----------
    current_a, power_w:
        Final operating point.
    iterations:
        Number of perturb steps executed.
    converged:
        Whether the step size shrank below tolerance before the
        iteration cap.
    trajectory_a:
        The visited currents (diagnostics; last entry = final current).
    """

    current_a: float
    power_w: float
    iterations: int
    converged: bool
    trajectory_a: List[float]


class PerturbObserveMPPT:
    """Hill-climbing MPP tracker on the array current.

    Parameters
    ----------
    initial_step_a:
        First perturbation size.
    min_step_a:
        Convergence threshold for the shrinking step.
    shrink_factor:
        Step multiplier applied on each direction reversal (1.0 gives
        the classic fixed-step P&O with its limit cycle).
    max_iterations:
        Safety cap on perturb steps.
    settle_time_per_step_s:
        Physical time one perturb-observe cycle takes; used to estimate
        the MPPT contribution to switching overhead.
    """

    def __init__(
        self,
        initial_step_a: float = 0.25,
        min_step_a: float = 0.005,
        shrink_factor: float = 0.5,
        max_iterations: int = 200,
        settle_time_per_step_s: float = 0.4e-3,
    ) -> None:
        require_positive(initial_step_a, "initial_step_a")
        require_positive(min_step_a, "min_step_a")
        if not 0.0 < shrink_factor <= 1.0:
            raise ModelParameterError(
                f"shrink_factor must lie in (0, 1], got {shrink_factor}"
            )
        if max_iterations < 1:
            raise ModelParameterError("max_iterations must be >= 1")
        require_positive(settle_time_per_step_s, "settle_time_per_step_s")
        self._initial_step_a = initial_step_a
        self._min_step_a = min_step_a
        self._shrink_factor = shrink_factor
        self._max_iterations = max_iterations
        self._settle_time_per_step_s = settle_time_per_step_s

    @property
    def settle_time_per_step_s(self) -> float:
        """Wall-clock duration of one perturb-observe cycle."""
        return self._settle_time_per_step_s

    def track(
        self,
        power_fn: Callable[[float], float],
        initial_current_a: float = 0.0,
    ) -> MPPTResult:
        """Track the maximum of ``power_fn`` over the current axis.

        Parameters
        ----------
        power_fn:
            Array output power as a function of drawn current; need not
            be differentiable, only unimodal for guaranteed success.
        initial_current_a:
            Starting current (e.g. the previous operating point, which
            is how the charger warm-starts after a reconfiguration).
        """
        current = max(float(initial_current_a), 0.0)
        power = power_fn(current)
        step = self._initial_step_a
        direction = 1.0
        trajectory = [current]
        iterations = 0
        converged = False

        while iterations < self._max_iterations:
            iterations += 1
            candidate = max(current + direction * step, 0.0)
            candidate_power = power_fn(candidate)
            if candidate_power > power:
                current, power = candidate, candidate_power
            else:
                direction = -direction
                step *= self._shrink_factor
                if step < self._min_step_a:
                    converged = True
                    trajectory.append(current)
                    break
            trajectory.append(current)

        return MPPTResult(
            current_a=current,
            power_w=power,
            iterations=iterations,
            converged=converged,
            trajectory_a=trajectory,
        )

    def settle_time_s(self, iterations: int) -> float:
        """Physical settle time of a run with ``iterations`` steps."""
        if iterations < 0:
            raise ModelParameterError("iterations must be >= 0")
        return iterations * self._settle_time_per_step_s
