"""Power-conditioning substrate: charger, converter, MPPT, battery.

Implements Section III-B of the paper: after a configuration is built,
the charger finds the array's maximum power point (perturb & observe,
Femia et al. [10]) and converts the array voltage to the vehicle
battery's 13.8 V charging bus through an LTM4607-class buck-boost
stage whose efficiency falls off as the input voltage deviates from
the output voltage.
"""

from repro.power.battery import LeadAcidBattery
from repro.power.charger import ChargerReport, TEGCharger
from repro.power.converter import BuckBoostConverter
from repro.power.mppt import MPPTResult, PerturbObserveMPPT

__all__ = [
    "BuckBoostConverter",
    "ChargerReport",
    "LeadAcidBattery",
    "MPPTResult",
    "PerturbObserveMPPT",
    "TEGCharger",
]
