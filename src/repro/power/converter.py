"""Buck-boost converter efficiency model (LTM4607 class).

The paper's charger converts the TEG array voltage to the 13.8 V
lead-acid charging bus and notes that "the converting efficiency
decreases when the input voltage deviates from the output voltage" —
the property that motivates INOR's converter-aware group-count range
``[n_min, n_max]``.

The efficiency surface is modelled as a log-parabola around an optimum
input voltage:

.. math::

    \\eta(V_{in}) = \\eta_{peak} - c \\cdot \\ln^2(V_{in}/V_{opt})

with a steeper coefficient below the optimum (buck-boost stages lose
more to conduction at low input voltage / high input current) than
above it.  A small quiescent draw makes very-low-power operation
unprofitable, as in the real part.

The curve has two evaluation forms: the scalar :meth:`efficiency` /
:meth:`output_power` used inside per-step control loops, and the
batched :meth:`efficiency_batch` / :meth:`output_power_batch` row-vector
forms the simulation engine and DNOR's horizon scoring consume.  The
scalar forms delegate to the same NumPy kernels so both paths are
bit-identical — the batch engine's equivalence guarantee depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass
import math

import numpy as np

from repro.errors import ModelParameterError
from repro.units import require_fraction, require_non_negative, require_positive


@dataclass(frozen=True)
class BuckBoostConverter:
    """Efficiency model of the charger's DC-DC stage.

    Parameters
    ----------
    output_voltage_v:
        Regulated output — 13.8 V for the paper's lead-acid bus.
    peak_efficiency:
        Efficiency at the optimal input voltage.
    optimal_input_v:
        Input voltage of peak efficiency; slightly above the output for
        a buck-leaning operating point.
    low_side_coeff, high_side_coeff:
        Log-parabola curvatures below/above the optimum.
    floor_efficiency:
        Lower clamp of the efficiency curve.
    quiescent_power_w:
        Controller/gate-drive overhead subtracted from the output.
    """

    output_voltage_v: float = 13.8
    peak_efficiency: float = 0.96
    optimal_input_v: float = 14.5
    low_side_coeff: float = 0.30
    high_side_coeff: float = 0.12
    floor_efficiency: float = 0.40
    quiescent_power_w: float = 0.35

    def __post_init__(self) -> None:
        require_positive(self.output_voltage_v, "output_voltage_v")
        require_fraction(self.peak_efficiency, "peak_efficiency")
        require_positive(self.optimal_input_v, "optimal_input_v")
        require_non_negative(self.low_side_coeff, "low_side_coeff")
        require_non_negative(self.high_side_coeff, "high_side_coeff")
        require_fraction(self.floor_efficiency, "floor_efficiency")
        require_non_negative(self.quiescent_power_w, "quiescent_power_w")
        if self.floor_efficiency > self.peak_efficiency:
            raise ModelParameterError(
                "floor_efficiency must not exceed peak_efficiency"
            )

    def efficiency(self, input_voltage_v: float) -> float:
        """Conversion efficiency at an input voltage.

        Non-positive input voltages return the floor (the stage cannot
        start); the curve is clamped to ``[floor, peak]``.
        """
        if input_voltage_v <= 0.0:
            return self.floor_efficiency
        deviation = float(np.log(input_voltage_v / self.optimal_input_v))
        coeff = self.low_side_coeff if deviation < 0.0 else self.high_side_coeff
        eta = self.peak_efficiency - coeff * deviation * deviation
        return min(max(eta, self.floor_efficiency), self.peak_efficiency)

    def efficiency_batch(self, input_voltage_v: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`efficiency` over a row vector of voltages.

        Elementwise bit-identical to the scalar form: both use the same
        NumPy ``log`` kernel, so a batched sweep and a per-step loop
        produce exactly the same efficiencies.
        """
        v = np.asarray(input_voltage_v, dtype=float)
        startable = v > 0.0
        safe_v = np.where(startable, v, self.optimal_input_v)
        deviation = np.log(safe_v / self.optimal_input_v)
        coeff = np.where(
            deviation < 0.0, self.low_side_coeff, self.high_side_coeff
        )
        eta = self.peak_efficiency - coeff * deviation * deviation
        eta = np.minimum(
            np.maximum(eta, self.floor_efficiency), self.peak_efficiency
        )
        return np.where(startable, eta, self.floor_efficiency)

    def output_power(self, input_power_w: float, input_voltage_v: float) -> float:
        """Power delivered to the bus for a given input operating point.

        Negative input power (a back-driven array) delivers nothing.
        """
        if input_power_w <= 0.0:
            return 0.0
        delivered = input_power_w * self.efficiency(input_voltage_v)
        return max(delivered - self.quiescent_power_w, 0.0)

    def output_power_batch(
        self, input_power_w: np.ndarray, input_voltage_v: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`output_power` over ``(P, V)`` row vectors.

        The hot-path form used by the batch simulation engine and by
        DNOR's horizon-energy scoring; elementwise bit-identical to the
        scalar :meth:`output_power`.
        """
        p = np.asarray(input_power_w, dtype=float)
        v = np.asarray(input_voltage_v, dtype=float)
        delivered = p * self.efficiency_batch(v)
        delivered = np.maximum(delivered - self.quiescent_power_w, 0.0)
        return np.where(p > 0.0, delivered, 0.0)

    def preferred_voltage_window(self, efficiency_drop: float = 0.03) -> tuple:
        """Input-voltage band keeping efficiency within ``drop`` of peak.

        Solves the log-parabola for the two crossings; this is the
        window INOR's ``[n_min, n_max]`` range targets (Sec. III-B /
        V-A of the paper).
        """
        require_positive(efficiency_drop, "efficiency_drop")
        low = self.optimal_input_v * math.exp(
            -math.sqrt(efficiency_drop / self.low_side_coeff)
            if self.low_side_coeff > 0.0
            else -math.inf
        )
        high = self.optimal_input_v * math.exp(
            math.sqrt(efficiency_drop / self.high_side_coeff)
            if self.high_side_coeff > 0.0
            else math.inf
        )
        return (low, high)
