"""Lead-acid vehicle battery as the harvesting sink.

The paper's system charges a standard 12 V lead-acid battery at its
13.8 V float/charge voltage.  For the energy-harvesting experiments
the battery is purely a sink with a charge-acceptance efficiency and a
current ceiling; the model tracks stored energy and state of charge so
examples can report meaningful end-to-end numbers.
"""

from __future__ import annotations

from repro.errors import ModelParameterError
from repro.units import require_fraction, require_positive


class LeadAcidBattery:
    """Coulomb-counting lead-acid battery model.

    Parameters
    ----------
    capacity_ah:
        Nameplate capacity at the 20-hour rate.
    charge_voltage_v:
        Charging bus voltage (13.8 V in the paper).
    coulombic_efficiency:
        Fraction of delivered charge retained.
    max_charge_current_a:
        Acceptance ceiling; excess power is refused (returned to the
        caller as unaccepted).
    initial_soc:
        Starting state of charge in [0, 1].
    """

    def __init__(
        self,
        capacity_ah: float = 60.0,
        charge_voltage_v: float = 13.8,
        coulombic_efficiency: float = 0.95,
        max_charge_current_a: float = 20.0,
        initial_soc: float = 0.5,
    ) -> None:
        require_positive(capacity_ah, "capacity_ah")
        require_positive(charge_voltage_v, "charge_voltage_v")
        require_fraction(coulombic_efficiency, "coulombic_efficiency")
        require_positive(max_charge_current_a, "max_charge_current_a")
        require_fraction(initial_soc, "initial_soc")
        self._capacity_ah = capacity_ah
        self._charge_voltage_v = charge_voltage_v
        self._coulombic_efficiency = coulombic_efficiency
        self._max_charge_current_a = max_charge_current_a
        self._soc = initial_soc
        self._absorbed_j = 0.0

    @property
    def charge_voltage_v(self) -> float:
        """Charging bus voltage."""
        return self._charge_voltage_v

    @property
    def soc(self) -> float:
        """State of charge in [0, 1]."""
        return self._soc

    @property
    def absorbed_energy_j(self) -> float:
        """Total electrical energy accepted since construction."""
        return self._absorbed_j

    def accept(self, power_w: float, dt_s: float) -> float:
        """Offer ``power_w`` for ``dt_s``; return the power accepted.

        Acceptance saturates at the current ceiling and at full charge.
        """
        require_positive(dt_s, "dt_s")
        if power_w < 0.0:
            raise ModelParameterError(f"power_w must be >= 0, got {power_w}")
        if self._soc >= 1.0:
            return 0.0
        max_power = self._max_charge_current_a * self._charge_voltage_v
        accepted = min(power_w, max_power)
        self._absorbed_j += accepted * dt_s
        charge_ah = (
            accepted
            / self._charge_voltage_v
            * dt_s
            / 3600.0
            * self._coulombic_efficiency
        )
        self._soc = min(self._soc + charge_ah / self._capacity_ah, 1.0)
        return accepted
