"""The TEG charger: MPPT + buck-boost + battery, composed.

This is the component the reconfiguration controller talks to.  Its
two jobs mirror Section III-B of the paper:

1. Given the configured array, find the operating point and report how
   much power actually reaches the 13.8 V bus (array MPP power times
   the voltage-dependent conversion efficiency).
2. Expose the *delivered-power* evaluation the algorithms use when
   ranking candidate configurations — this is how the converter's
   voltage preference enters INOR's choice of group count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.power.battery import LeadAcidBattery
from repro.power.converter import BuckBoostConverter
from repro.power.mppt import PerturbObserveMPPT
from repro.teg.array import TEGArray
from repro.teg.module import MPPPoint


@dataclass(frozen=True)
class ChargerReport:
    """One charging step's accounting.

    Attributes
    ----------
    array_voltage_v, array_current_a, array_power_w:
        Operating point extracted from the array.
    conversion_efficiency:
        Converter efficiency at the array voltage.
    delivered_power_w:
        Power pushed onto the battery bus (after converter losses).
    accepted_power_w:
        Power the battery actually accepted.
    mppt_iterations:
        Perturb steps used when exact tracking is disabled (0 when the
        analytic MPP was used).
    """

    array_voltage_v: float
    array_current_a: float
    array_power_w: float
    conversion_efficiency: float
    delivered_power_w: float
    accepted_power_w: float
    mppt_iterations: int


class TEGCharger:
    """Charger between the reconfigurable array and the battery.

    Parameters
    ----------
    converter:
        The DC-DC efficiency model.
    battery:
        The sink; optional — without one, ``accepted == delivered``.
    mppt:
        Perturb & observe tracker used when ``exact_tracking=False``.
    exact_tracking:
        When True (default) the charger operates the array at its
        analytic MPP; P&O converges there for the linear model, so this
        is a speed optimisation, not a behaviour change (validated in
        the test suite).
    """

    def __init__(
        self,
        converter: Optional[BuckBoostConverter] = None,
        battery: Optional[LeadAcidBattery] = None,
        mppt: Optional[PerturbObserveMPPT] = None,
        exact_tracking: bool = True,
    ) -> None:
        self._converter = converter or BuckBoostConverter()
        self._battery = battery
        self._mppt = mppt or PerturbObserveMPPT()
        self._exact_tracking = bool(exact_tracking)

    @property
    def converter(self) -> BuckBoostConverter:
        """The DC-DC stage model."""
        return self._converter

    @property
    def battery(self) -> Optional[LeadAcidBattery]:
        """The attached battery, if any."""
        return self._battery

    @property
    def mppt(self) -> PerturbObserveMPPT:
        """The P&O tracker."""
        return self._mppt

    @property
    def exact_tracking(self) -> bool:
        """Whether the charger operates at the analytic MPP."""
        return self._exact_tracking

    # ------------------------------------------------------------------
    # Evaluation used by the reconfiguration algorithms
    # ------------------------------------------------------------------
    def delivered_at_mpp(self, mpp: MPPPoint) -> float:
        """Bus power if the array runs at a given MPP.

        This is the ``P_MPP`` that Algorithm 1 compares across group
        counts: array MPP power degraded by the converter's efficiency
        at the MPP voltage.
        """
        return self._converter.output_power(mpp.power_w, mpp.voltage_v)

    def delivered_batch(
        self, power_w: np.ndarray, voltage_v: np.ndarray
    ) -> np.ndarray:
        """Bus power for row vectors of array ``(P, V)`` operating points.

        The batched counterpart of :meth:`delivered_at_mpp`, used by the
        simulation engine's segment evaluation and DNOR's horizon
        scoring; elementwise bit-identical to the scalar path.
        """
        return self._converter.output_power_batch(power_w, voltage_v)

    def preferred_voltage_window(self, efficiency_drop: float = 0.03) -> Tuple[float, float]:
        """Input-voltage band for the converter-aware group-count range."""
        return self._converter.preferred_voltage_window(efficiency_drop)

    # ------------------------------------------------------------------
    # Closed-loop operation
    # ------------------------------------------------------------------
    def step(
        self,
        array: TEGArray,
        config: object,
        dt_s: float,
        previous_current_a: float = 0.0,
    ) -> ChargerReport:
        """Operate the configured array for ``dt_s`` and charge the battery.

        With exact tracking the analytic MPP is used; otherwise P&O runs
        from ``previous_current_a`` (warm start), and the resulting
        operating point may sit slightly off the true MPP, exactly as a
        real tracker's limit cycle would.
        """
        if self._exact_tracking:
            mpp = array.configured_mpp(config)
            voltage, current, power = mpp.voltage_v, mpp.current_a, mpp.power_w
            iterations = 0
        else:
            result = self._mppt.track(
                lambda current_a: array.power_at_current(config, current_a),
                initial_current_a=previous_current_a,
            )
            current = result.current_a
            power = result.power_w
            e_total, r_total = array.thevenin(config)
            voltage = e_total - current * r_total
            iterations = result.iterations

        power = max(power, 0.0)
        delivered = self._converter.output_power(power, voltage)
        if self._battery is not None:
            accepted = self._battery.accept(delivered, dt_s)
        else:
            accepted = delivered
        return ChargerReport(
            array_voltage_v=voltage,
            array_current_a=current,
            array_power_w=power,
            conversion_efficiency=self._converter.efficiency(voltage)
            if voltage > 0.0
            else 0.0,
            delivered_power_w=delivered,
            accepted_power_w=accepted,
            mppt_iterations=iterations,
        )
