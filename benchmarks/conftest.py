"""Shared fixtures for the benchmark harness.

The expensive artefact — the full 800-second four-scheme simulation
suite behind Table I and Figs. 6/7 — is computed once per session and
shared.  Every bench prints the paper-comparable rows and also writes
them to ``benchmarks/results/`` so the regenerated tables survive
pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import pytest

from repro.sim.results import SimulationResult
from repro.sim.scenario import Scenario, default_scenario

RESULTS_DIR = Path(__file__).parent / "results"


def write_artifact(name: str, text: str) -> Path:
    """Persist a regenerated table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text)
    return path


def emit(name: str, text: str) -> None:
    """Print a regenerated artefact and persist it."""
    print(f"\n===== {name} =====")
    print(text)
    path = write_artifact(name, text)
    print(f"[saved to {path}]")


@pytest.fixture(scope="session")
def scenario_800() -> Scenario:
    """The paper's evaluation scenario: 100 modules, 800 s, seed 2018."""
    return default_scenario(duration_s=800.0, seed=2018)


@pytest.fixture(scope="session")
def table1_results(scenario_800: Scenario) -> Dict[str, SimulationResult]:
    """All four schemes simulated over the full 800-second trace.

    This is the single most expensive fixture (~2 minutes, dominated by
    EHTR's per-period O(N^3)-class search); everything downstream
    (Table I, Fig. 6, Fig. 7) reuses it.
    """
    simulator = scenario_800.make_simulator()
    return {
        name: simulator.run(policy, scenario_800.make_charger())
        for name, policy in scenario_800.make_policies().items()
    }
