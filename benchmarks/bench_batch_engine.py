"""Batch simulation engine — sequential per-step loop vs layered engine.

The refactor's acceptance bar: the batched single-policy path
(trace-level physics precompute + segment-batched converter math) must
beat the pre-refactor per-sample loop (two radiator solves and a
scalar charger step per control period) by >= 3x at the scalability
bench's largest configuration (N = 400).  This bench measures both
engines across array sizes, plus the multi-scenario throughput of the
:class:`~repro.sim.engine.ExperimentRunner` fan-out, and writes the
table and a JSON record into ``benchmarks/results/`` so the speedup
trajectory is tracked across PRs.

The physics-cache section measures what
:class:`~repro.sim.cache.PhysicsCache` buys an experiment grid whose
cells share a trace (the scanner-noise axis): "cold" runs each cell
the way an uncached process-pool worker does — re-solving the trace
physics per case — while "warm" routes every cell through a
pre-warmed cache.  Acceptance bar: warm >= 2x cold at the largest
array size; the JSON artifact records the hit rate alongside.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_BATCH_SIZES``      — comma list of array sizes
  (default ``100,400``; must be perfect squares for the baseline).
* ``REPRO_BENCH_BATCH_DURATION_S`` — trace length (default 40 s).
"""

import json
import os
import time

import pytest

from conftest import emit, write_artifact
from repro.sim.cache import PhysicsCache
from repro.sim.engine import ExperimentRunner, grid_cases, run_case
from repro.sim.scenario import build_named_scenario, default_scenario
from repro.sim.simulator import HarvestSimulator

SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_BENCH_BATCH_SIZES", "100,400").split(",")
)
DURATION_S = float(os.environ.get("REPRO_BENCH_BATCH_DURATION_S", "40"))


def _make_simulator(scenario, engine: str) -> HarvestSimulator:
    return HarvestSimulator(
        trace=scenario.trace,
        boundary=scenario.boundary,
        module=scenario.module,
        n_modules=scenario.n_modules,
        overhead=scenario.overhead,
        scanner=scenario.make_scanner(),
        nominal_compute_s=1.0e-3,
        engine=engine,
    )


def measure(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def engine_rows():
    """(N, t_reference, t_batched_cold, t_batched_warm) per array size.

    The cold batched time includes the physics precompute (a fresh
    simulator per run — the fair single-policy comparison); the warm
    time reuses one simulator's cached :class:`TracePhysics`, which is
    what a multi-policy experiment actually pays per run.
    """
    rows = []
    for n in SIZES:
        scenario = default_scenario(
            duration_s=DURATION_S, seed=2018, n_modules=n,
            nominal_compute_s=1.0e-3,
        )
        policy = scenario.make_baseline_policy()

        def run_reference():
            _make_simulator(scenario, "reference").run(
                policy, scenario.make_charger()
            )

        def run_batched_cold():
            _make_simulator(scenario, "batched").run(
                policy, scenario.make_charger()
            )

        warm_simulator = _make_simulator(scenario, "batched")
        warm_simulator.physics  # precompute outside the timed region

        def run_batched_warm():
            warm_simulator.run(policy, scenario.make_charger())

        rows.append(
            (
                n,
                measure(run_reference),
                measure(run_batched_cold),
                measure(run_batched_warm),
            )
        )
    return rows


def render_rows(rows) -> str:
    lines = [
        "Batch engine - per-step reference loop vs layered engine "
        f"({DURATION_S:g} s trace, static policy)",
        f"{'N':>6s} {'reference (ms)':>15s} {'batched cold (ms)':>18s} "
        f"{'batched warm (ms)':>18s} {'speedup':>8s}",
    ]
    for n, t_ref, t_cold, t_warm in rows:
        lines.append(
            f"{n:6d} {t_ref * 1e3:15.1f} {t_cold * 1e3:18.1f} "
            f"{t_warm * 1e3:18.1f} {t_ref / t_cold:7.1f}x"
        )
    lines.append("")
    lines.append(
        "cold = fresh TracePhysics per run; warm = precompute shared "
        "across policy runs (the conftest table1 pattern)."
    )
    return "\n".join(lines)


@pytest.fixture(scope="module")
def cache_rows():
    """Shared-trace grid: per-cell solves (cold) vs a warm cache.

    Four scanner-noise variants of one scenario at the largest array
    size — the exact grid shape the cache layer targets: every cell
    shares the trace, so cold pays four physics precomputes and warm
    pays none.
    """
    n = SIZES[-1]
    scenario = default_scenario(
        duration_s=DURATION_S, seed=2018, n_modules=n,
        nominal_compute_s=1.0e-3,
    )
    cases = grid_cases(
        [scenario], ["Baseline"], scanner_noise_std_k=[0.0, 0.04, 0.08, 0.16]
    )

    def run_cold():
        # What an uncached process-pool worker pays: every cell solves
        # its own TracePhysics from scratch.
        for case in cases:
            run_case(case)

    warm_cache = PhysicsCache()
    warm_cache.warm([case.scenario for case in cases])

    def run_warm():
        ExperimentRunner(cases, executor="serial", cache=warm_cache).run()

    t_cold = measure(run_cold, repeats=3)
    t_warm = measure(run_warm, repeats=3)
    stats = warm_cache.stats
    return {
        "n_modules": n,
        "grid_cells": len(cases),
        "cold_s": t_cold,
        "warm_s": t_warm,
        "speedup": t_cold / t_warm,
        "cache_hit_rate": stats.hit_rate,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
    }


def test_batched_engine_speedup(engine_rows):
    """The acceptance criterion: >= 3x at the largest configuration."""
    n, t_ref, t_cold, t_warm = engine_rows[-1]
    emit("batch_engine.txt", render_rows(engine_rows))
    assert t_warm <= t_cold * 1.05  # precompute reuse can only help
    assert t_ref / t_cold >= 3.0, (
        f"batched engine only {t_ref / t_cold:.1f}x faster than the "
        f"per-step loop at N={n}"
    )


def test_warm_cache_grid_speedup(cache_rows):
    """The cache acceptance gate: warm grid >= 2x the per-cell solves."""
    emit(
        "batch_engine_cache.txt",
        (
            f"Physics cache - shared-trace grid "
            f"({cache_rows['grid_cells']} cells, N = "
            f"{cache_rows['n_modules']}, {DURATION_S:g} s trace)\n"
            f"cold (per-cell solve): {cache_rows['cold_s'] * 1e3:8.1f} ms\n"
            f"warm (cached physics): {cache_rows['warm_s'] * 1e3:8.1f} ms\n"
            f"speedup:               {cache_rows['speedup']:8.1f}x\n"
            f"cache hit rate:        {cache_rows['cache_hit_rate']:8.0%} "
            f"({cache_rows['cache_hits']} hits / "
            f"{cache_rows['cache_misses']} solve)"
        ),
    )
    assert cache_rows["cache_misses"] == 1  # one solve for the whole grid
    assert cache_rows["speedup"] >= 2.0, (
        f"warm-cache grid only {cache_rows['speedup']:.1f}x faster than "
        f"per-cell solves at N={cache_rows['n_modules']}"
    )


def test_multi_scenario_throughput(engine_rows, cache_rows):
    """Fan-out throughput: ExperimentRunner vs a sequential case loop.

    Informational (no speedup assert — worker count and machine load
    vary); the JSON artifact records the trajectory.
    """
    scenarios = [
        build_named_scenario("porter-ii", duration_s=DURATION_S, n_modules=25),
        build_named_scenario("cold-start", duration_s=DURATION_S, n_modules=25),
    ]
    cases = grid_cases(scenarios, ["INOR", "Baseline"])

    t_seq = measure(lambda: [run_case(c) for c in cases], repeats=1)
    t_par = measure(
        lambda: ExperimentRunner(cases, executor="process", max_workers=4).run(),
        repeats=1,
    )

    rows = {
        "sizes": list(SIZES),
        "duration_s": DURATION_S,
        "engine": [
            {
                "n_modules": n,
                "reference_s": t_ref,
                "batched_cold_s": t_cold,
                "batched_warm_s": t_warm,
                "speedup_cold": t_ref / t_cold,
                "speedup_warm": t_ref / t_warm,
            }
            for n, t_ref, t_cold, t_warm in engine_rows
        ],
        "multi_scenario": {
            "cases": len(cases),
            "sequential_s": t_seq,
            "process_pool_s": t_par,
        },
        "physics_cache": cache_rows,
    }
    path = write_artifact("batch_engine.json", json.dumps(rows, indent=2))
    print(f"\n[batch-engine JSON saved to {path}]")
    print(
        f"multi-scenario: {len(cases)} cases sequential {t_seq:.2f} s, "
        f"process pool {t_par:.2f} s"
    )
