"""Batch simulation engine — sequential per-step loop vs layered engine.

The refactor's acceptance bar: the batched single-policy path
(trace-level physics precompute + segment-batched converter math) must
beat the pre-refactor per-sample loop (two radiator solves and a
scalar charger step per control period) by >= 3x at the scalability
bench's largest configuration (N = 400).  This bench measures both
engines across array sizes, plus the multi-scenario throughput of the
:class:`~repro.sim.engine.ExperimentRunner` fan-out, and writes the
table and a JSON record into ``benchmarks/results/`` so the speedup
trajectory is tracked across PRs.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_BATCH_SIZES``      — comma list of array sizes
  (default ``100,400``; must be perfect squares for the baseline).
* ``REPRO_BENCH_BATCH_DURATION_S`` — trace length (default 40 s).
"""

import json
import os
import time

import pytest

from conftest import emit, write_artifact
from repro.sim.engine import ExperimentRunner, grid_cases, run_case
from repro.sim.scenario import build_named_scenario, default_scenario
from repro.sim.simulator import HarvestSimulator

SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_BENCH_BATCH_SIZES", "100,400").split(",")
)
DURATION_S = float(os.environ.get("REPRO_BENCH_BATCH_DURATION_S", "40"))


def _make_simulator(scenario, engine: str) -> HarvestSimulator:
    return HarvestSimulator(
        trace=scenario.trace,
        radiator=scenario.radiator,
        module=scenario.module,
        n_modules=scenario.n_modules,
        overhead=scenario.overhead,
        scanner=scenario.make_scanner(),
        nominal_compute_s=1.0e-3,
        engine=engine,
    )


def measure(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def engine_rows():
    """(N, t_reference, t_batched_cold, t_batched_warm) per array size.

    The cold batched time includes the physics precompute (a fresh
    simulator per run — the fair single-policy comparison); the warm
    time reuses one simulator's cached :class:`TracePhysics`, which is
    what a multi-policy experiment actually pays per run.
    """
    rows = []
    for n in SIZES:
        scenario = default_scenario(
            duration_s=DURATION_S, seed=2018, n_modules=n,
            nominal_compute_s=1.0e-3,
        )
        policy = scenario.make_baseline_policy()

        def run_reference():
            _make_simulator(scenario, "reference").run(
                policy, scenario.make_charger()
            )

        def run_batched_cold():
            _make_simulator(scenario, "batched").run(
                policy, scenario.make_charger()
            )

        warm_simulator = _make_simulator(scenario, "batched")
        warm_simulator.physics  # precompute outside the timed region

        def run_batched_warm():
            warm_simulator.run(policy, scenario.make_charger())

        rows.append(
            (
                n,
                measure(run_reference),
                measure(run_batched_cold),
                measure(run_batched_warm),
            )
        )
    return rows


def render_rows(rows) -> str:
    lines = [
        "Batch engine - per-step reference loop vs layered engine "
        f"({DURATION_S:g} s trace, static policy)",
        f"{'N':>6s} {'reference (ms)':>15s} {'batched cold (ms)':>18s} "
        f"{'batched warm (ms)':>18s} {'speedup':>8s}",
    ]
    for n, t_ref, t_cold, t_warm in rows:
        lines.append(
            f"{n:6d} {t_ref * 1e3:15.1f} {t_cold * 1e3:18.1f} "
            f"{t_warm * 1e3:18.1f} {t_ref / t_cold:7.1f}x"
        )
    lines.append("")
    lines.append(
        "cold = fresh TracePhysics per run; warm = precompute shared "
        "across policy runs (the conftest table1 pattern)."
    )
    return "\n".join(lines)


def test_batched_engine_speedup(engine_rows):
    """The acceptance criterion: >= 3x at the largest configuration."""
    n, t_ref, t_cold, t_warm = engine_rows[-1]
    emit("batch_engine.txt", render_rows(engine_rows))
    assert t_warm <= t_cold * 1.05  # precompute reuse can only help
    assert t_ref / t_cold >= 3.0, (
        f"batched engine only {t_ref / t_cold:.1f}x faster than the "
        f"per-step loop at N={n}"
    )


def test_multi_scenario_throughput(engine_rows):
    """Fan-out throughput: ExperimentRunner vs a sequential case loop.

    Informational (no speedup assert — worker count and machine load
    vary); the JSON artifact records the trajectory.
    """
    scenarios = [
        build_named_scenario("porter-ii", duration_s=DURATION_S, n_modules=25),
        build_named_scenario("cold-start", duration_s=DURATION_S, n_modules=25),
    ]
    cases = grid_cases(scenarios, ["INOR", "Baseline"])

    t_seq = measure(lambda: [run_case(c) for c in cases], repeats=1)
    t_par = measure(
        lambda: ExperimentRunner(cases, executor="process", max_workers=4).run(),
        repeats=1,
    )

    rows = {
        "sizes": list(SIZES),
        "duration_s": DURATION_S,
        "engine": [
            {
                "n_modules": n,
                "reference_s": t_ref,
                "batched_cold_s": t_cold,
                "batched_warm_s": t_warm,
                "speedup_cold": t_ref / t_cold,
                "speedup_warm": t_ref / t_warm,
            }
            for n, t_ref, t_cold, t_warm in engine_rows
        ],
        "multi_scenario": {
            "cases": len(cases),
            "sequential_s": t_seq,
            "process_pool_s": t_par,
        },
    }
    path = write_artifact("batch_engine.json", json.dumps(rows, indent=2))
    print(f"\n[batch-engine JSON saved to {path}]")
    print(
        f"multi-scenario: {len(cases)} cases sequential {t_seq:.2f} s, "
        f"process pool {t_par:.2f} s"
    )
