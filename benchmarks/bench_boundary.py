"""Thermal-boundary solve gates: batched `solve_trace` must stay batched.

The boundary protocol's one hot loop is ``solve_trace`` — every
consumer (physics precompute, cache warm, stream chunks) hands it whole
column arrays and expects one vectorised pass.  The exhaust-gas
boundary is the one most tempted to degrade (its duct march is
sequential in *module position*), so this harness gates it:

1. **Vectorised exhaust ``solve_trace`` beats the per-sample scalar
   path by >= 3x.**  The march may loop over the N module positions,
   but each step must stay an elementwise pass over all samples at
   once; a per-sample fallback would multiply the physics precompute
   cost of every exhaust scenario by the trace length.
2. **The finite-coupling wrapper's overhead on top of its inner solve
   stays bounded** — the divider is a handful of elementwise arrays,
   not another solve.

Both timings double as parity checks: the looped scalar path must
reproduce the batched rows bitwise (the protocol's row-wise contract).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_BOUNDARY_SAMPLES`` — trace length (default 1500).
* ``REPRO_BENCH_BOUNDARY_MODULES`` — module positions N (default 64).
"""

import json
import os
import time

import numpy as np
from conftest import emit

from repro.thermal.coupling import FiniteCouplingBoundary
from repro.thermal.exhaust import ExhaustGasBoundary
from repro.vehicle.trace import default_radiator

SAMPLES = int(os.environ.get("REPRO_BENCH_BOUNDARY_SAMPLES", "1500"))
MODULES = int(os.environ.get("REPRO_BENCH_BOUNDARY_MODULES", "64"))

#: Batched exhaust solve vs the same rows through the per-sample
#: scalar path.  The real margin is orders of magnitude; 3x is the
#: floor that still fails a silently de-vectorised march.
GATE_EXHAUST_SPEEDUP = 3.0

#: Finite-coupling wrap cost: wrapped solve time over inner solve time.
#: The divider adds a few elementwise arrays, so anything beyond this
#: multiple means the wrapper started re-solving or copying per sample.
GATE_WRAPPER_OVERHEAD = 3.0


def _exhaust_columns(n):
    rng = np.random.default_rng(42)
    inlet = rng.uniform(200.0, 450.0, n)
    flow = rng.uniform(0.03, 0.12, n)
    ambient = rng.uniform(20.0, 40.0, n)
    cold = rng.uniform(0.3, 0.8, n)
    return inlet, flow, ambient, cold


def _radiator_columns(n):
    rng = np.random.default_rng(43)
    inlet = rng.uniform(60.0, 110.0, n)
    flow = rng.uniform(0.05, 0.5, n)
    ambient = rng.uniform(15.0, 40.0, n)
    cold = rng.uniform(0.2, 1.5, n)
    return inlet, flow, ambient, cold


def _time(fn, repeats=3):
    best = np.inf
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_exhaust_batched_beats_per_sample_loop():
    boundary = ExhaustGasBoundary()
    inlet, flow, ambient, cold = _exhaust_columns(SAMPLES)

    batched_s, batched = _time(
        lambda: boundary.solve_trace(inlet, flow, ambient, cold, MODULES)
    )

    def per_sample():
        rows = [
            boundary.operating_point(
                float(inlet[i]),
                float(flow[i]),
                float(ambient[i]),
                float(cold[i]),
                MODULES,
            )
            for i in range(SAMPLES)
        ]
        return rows

    loop_s, rows = _time(per_sample, repeats=1)

    # Parity first: the loop must reproduce the batched rows bitwise.
    for i in (0, SAMPLES // 2, SAMPLES - 1):
        assert np.array_equal(
            rows[i].surface_temps_c, batched.surface_temps_c[i]
        )
        assert np.array_equal(rows[i].delta_t_k, batched.delta_t_k[i])

    speedup = loop_s / batched_s
    emit(
        "bench_boundary_exhaust.json",
        json.dumps(
            {
                "samples": SAMPLES,
                "modules": MODULES,
                "batched_s": batched_s,
                "per_sample_loop_s": loop_s,
                "speedup": speedup,
                "gate": GATE_EXHAUST_SPEEDUP,
            },
            indent=2,
        ),
    )
    assert speedup >= GATE_EXHAUST_SPEEDUP, (
        f"batched exhaust solve_trace only {speedup:.1f}x over the "
        f"per-sample loop (gate {GATE_EXHAUST_SPEEDUP}x) — the march "
        f"has de-vectorised"
    )


def test_finite_coupling_wrapper_overhead_is_bounded():
    radiator = default_radiator()
    wrapped = FiniteCouplingBoundary(inner=radiator)
    inlet, flow, ambient, cold = _radiator_columns(SAMPLES)

    inner_s, inner_sol = _time(
        lambda: radiator.solve_trace(inlet, flow, ambient, cold, MODULES)
    )
    wrapped_s, wrapped_sol = _time(
        lambda: wrapped.solve_trace(inlet, flow, ambient, cold, MODULES)
    )

    # The divider only ever shrinks the reservoir difference.
    positive = inner_sol.delta_t_k > 0.0
    assert np.all(
        wrapped_sol.delta_t_k[positive] < inner_sol.delta_t_k[positive]
    )

    overhead = wrapped_s / inner_s
    emit(
        "bench_boundary_coupling.json",
        json.dumps(
            {
                "samples": SAMPLES,
                "modules": MODULES,
                "inner_solve_s": inner_s,
                "wrapped_solve_s": wrapped_s,
                "overhead_factor": overhead,
                "gate": GATE_WRAPPER_OVERHEAD,
            },
            indent=2,
        ),
    )
    assert overhead <= GATE_WRAPPER_OVERHEAD, (
        f"finite-coupling wrapper costs {overhead:.1f}x its inner solve "
        f"(gate {GATE_WRAPPER_OVERHEAD}x) — the divider should be a few "
        f"elementwise arrays"
    )
