"""Fig. 5 — 1-second prediction MAPE of MLR vs BPNN vs SVR.

Walk-forward evaluation of the three predictors on the module
temperature history of the canonical trace, forecasting 1 second ahead
and scoring with the paper's Eq. (3).  The regenerated artefact is the
per-method error series summary; the paper's verdict to check is
MLR < {BPNN, SVR} with worst-case MLR error around 0.3%.

The benchmark measures the MLR fit+forecast step — the cost the paper
calls "transitory" next to the reconfiguration algorithm.
"""

import numpy as np
import pytest

from conftest import emit
from repro.prediction.bpnn import BPNNPredictor
from repro.prediction.evaluate import walk_forward_evaluation
from repro.prediction.mlr import MLRPredictor
from repro.prediction.svr import SVRPredictor


@pytest.fixture(scope="module")
def temperature_history(scenario_800):
    """(T, N') surface-temperature matrix over the first 400 s.

    The paper predicts the radiator surface temperature distribution
    (Eq. 1); every 5th module is evaluated — the profile is smooth in
    space, so this keeps the slow trainers tractable without changing
    the verdict.
    """
    scenario = scenario_800
    trace = scenario.trace
    n_rows = int(400.0 / trace.dt_s)
    rows = np.empty((n_rows, scenario.n_modules))
    for i in range(n_rows):
        op = scenario.radiator.operating_point(
            coolant_inlet_c=float(trace.coolant_inlet_c[i]),
            coolant_flow_kg_s=float(trace.coolant_flow_kg_s[i]),
            ambient_c=float(trace.ambient_c[i]),
            air_flow_kg_s=float(trace.air_flow_kg_s[i]),
            n_modules=scenario.n_modules,
        )
        rows[i] = op.surface_temps_c
    return rows[:, ::5]


def evaluate_all(history):
    horizon = 2  # 1 second at the 0.5 s sample period
    evaluations = {}
    for predictor, refit in (
        (MLRPredictor(), 1),
        (BPNNPredictor(epochs=30, seed=1), 25),
        (SVRPredictor(epochs=25, seed=1), 25),
    ):
        evaluations[predictor.name] = walk_forward_evaluation(
            predictor,
            history,
            horizon_steps=horizon,
            warmup_rows=160,
            stride=4,
            refit_every=refit,
        )
    return evaluations


def render_fig5(evaluations) -> str:
    lines = [
        "Fig. 5 — 1-second-ahead prediction percentage error (Eq. 3 MAPE)",
        f"{'method':>6s} {'mean %':>9s} {'p90 %':>9s} {'max %':>9s} "
        f"{'fit ms':>8s} {'fcst ms':>8s}",
    ]
    for name, ev in evaluations.items():
        lines.append(
            f"{name:>6s} {ev.mean_mape_pct:9.4f} "
            f"{float(np.percentile(ev.mape_series_pct, 90)):9.4f} "
            f"{ev.max_mape_pct:9.4f} "
            f"{ev.mean_fit_seconds * 1e3:8.2f} "
            f"{ev.mean_forecast_seconds * 1e3:8.3f}"
        )
    mlr = evaluations["MLR"]
    series = mlr.mape_series_pct
    lines.append("")
    lines.append("MLR error series (one value per 2 s, percent):")
    chunks = [series[k : k + 20] for k in range(0, len(series), 20)]
    for chunk in chunks:
        lines.append(" ".join(f"{v:6.4f}" for v in chunk))
    lines.append("")
    lines.append(
        "Paper comparison: MLR is the most accurate method and its "
        "worst 1-2 s error stays around/below ~0.3% (Fig. 5)."
    )
    return "\n".join(lines)


def test_fig5_prediction_mape(benchmark, temperature_history):
    history = temperature_history
    evaluations = evaluate_all(history)

    # Paper shape: MLR wins.  Typical errors sit at the paper's ~0.1%
    # scale; the worst case is looser than the paper's 0.3% because our
    # synthetic drive has sharper load steps than the measured one
    # (recorded as a deviation in EXPERIMENTS.md).
    assert evaluations["MLR"].mean_mape_pct <= evaluations["BPNN"].mean_mape_pct
    assert evaluations["MLR"].mean_mape_pct <= evaluations["SVR"].mean_mape_pct
    assert evaluations["MLR"].mean_mape_pct < 0.15
    assert float(np.percentile(evaluations["MLR"].mape_series_pct, 90)) < 0.35
    assert evaluations["MLR"].max_mape_pct < 4.0

    emit("fig5_prediction_mape.txt", render_fig5(evaluations))

    # Benchmark the online MLR step (fit on history + 1 s forecast).
    predictor = MLRPredictor()

    def mlr_step():
        predictor.fit(history)
        return predictor.forecast(history, 2)

    forecast = benchmark(mlr_step)
    assert forecast.shape == (2, history.shape[1])
