"""DNOR epoch planning — sequential horizon scoring vs the stacked kernel.

Algorithm 2 compares the old configuration against its proposal(s)
over a ``t_p + 1``-second forecast horizon.  The pre-batching
implementation paid one :meth:`~repro.core.dnor.DNORPlanner._horizon_energy`
call — one ``array_mpp_rows`` reduction plus one converter pass — per
configuration; the stacked kernel
(:meth:`~repro.core.dnor.DNORPlanner._horizon_energy_multi`, built on
:func:`repro.teg.network.array_mpp_rows_multi`) scores *every*
configuration over the whole horizon in a single reduction, bit-
identical to the sequential loop.

At ``plan()``'s two configurations the stacked call is cost-neutral
(the kernel launch amortises nothing); the win appears when an epoch
scores several proposals — ``plan_batch()`` serving the fault-aware or
exhaustive candidate generators.  Acceptance bar: the stacked kernel
must be >= 1.4x the sequential loop for every candidate count >= 8.
Full ``plan()`` / ``plan_batch()`` epoch wall-times are recorded
alongside in the JSON artifact.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_DNOR_MODULES`` — chain length (default 100).
* ``REPRO_BENCH_DNOR_CONFIGS`` — comma list of configuration counts
  (default ``2,8,16,32``; counts are clamped to the chain length).
"""

import json
import os
import time

import numpy as np

from conftest import emit, write_artifact
from repro.core.config import ArrayConfiguration
from repro.core.dnor import DNORPlanner
from repro.core.overhead import SwitchingOverheadModel
from repro.power.charger import TEGCharger
from repro.prediction.mlr import MLRPredictor
from repro.teg.datasheet import TGM_199_1_4_0_8

N_MODULES = int(os.environ.get("REPRO_BENCH_DNOR_MODULES", "100"))
CONFIG_COUNTS = tuple(
    min(int(c), N_MODULES - 1)
    for c in os.environ.get("REPRO_BENCH_DNOR_CONFIGS", "2,8,16,32").split(",")
)

#: Candidate counts at least this large carry the speedup gate.
GATED_COUNT = 8
GATE_SPEEDUP = 1.4


def measure(fn, repeats: int = 7, inner: int = 100) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def make_planner() -> DNORPlanner:
    return DNORPlanner(
        module=TGM_199_1_4_0_8,
        charger=TEGCharger(),
        overhead=SwitchingOverheadModel(),
        predictor=MLRPredictor(lags=4, train_window=120),
        tp_seconds=1.0,
        sample_dt_s=0.5,
        nominal_compute_s=2.0e-3,
    )


def make_history(rng: np.random.Generator) -> np.ndarray:
    """A radiator-like decaying profile with sensing noise."""
    profile = (
        25.0 + 55.0 * np.exp(-2.2 * np.linspace(0.0, 1.0, N_MODULES)) + 10.0
    )
    return profile[None, :] + rng.normal(0.0, 0.4, (120, N_MODULES))


def horizon_rows(planner, history, rng) -> np.ndarray:
    now = history[-1]
    return np.vstack(
        [np.tile(now, (2, 1)), now + rng.normal(0.0, 0.2, (2, N_MODULES))]
    )


def sweep_rows():
    """(n_configs, t_sequential, t_stacked) per configuration count."""
    rng = np.random.default_rng(2018)
    planner = make_planner()
    history = make_history(rng)
    rows = horizon_rows(planner, history, rng)
    out = []
    for count in CONFIG_COUNTS:
        configs = [
            ArrayConfiguration.uniform(N_MODULES, g)
            for g in range(2, 2 + count)
        ]

        def sequential():
            return [
                planner._horizon_energy(config, rows, 25.0)
                for config in configs
            ]

        def stacked():
            return planner._horizon_energy_multi(configs, rows, 25.0)

        # The equivalence contract: stacked == sequential, bitwise.
        assert stacked().tolist() == sequential()
        out.append((count, measure(sequential), measure(stacked)))
    return out


def epoch_times():
    """Wall time of one plan() epoch and one 16-candidate plan_batch."""
    rng = np.random.default_rng(2019)
    planner = make_planner()
    history = make_history(rng)
    current = ArrayConfiguration.uniform(N_MODULES, 12)
    candidates = [
        ArrayConfiguration.uniform(N_MODULES, g)
        for g in range(2, 2 + min(16, N_MODULES - 2))
    ]
    t_plan = measure(
        lambda: planner.plan(history, 25.0, current=current), inner=20
    )
    t_batch = measure(
        lambda: planner.plan_batch(
            history, 25.0, current=current, candidates=candidates
        ),
        inner=20,
    )
    return t_plan, t_batch, len(candidates)


def render(rows, t_plan, t_batch, n_batch) -> str:
    lines = [
        f"DNOR horizon scoring - sequential loop vs stacked kernel "
        f"(N = {N_MODULES} modules, 4 horizon rows)",
        f"{'configs':>8s} {'sequential (us)':>16s} {'stacked (us)':>13s} "
        f"{'speedup':>8s}",
    ]
    for count, t_seq, t_stk in rows:
        lines.append(
            f"{count:8d} {t_seq * 1e6:16.1f} {t_stk * 1e6:13.1f} "
            f"{t_seq / t_stk:7.2f}x"
        )
    lines.append("")
    lines.append(
        f"plan() epoch (INOR + predictor + 2-config horizon): "
        f"{t_plan * 1e6:.0f} us"
    )
    lines.append(
        f"plan_batch() epoch, {n_batch} candidates, one stacked pass: "
        f"{t_batch * 1e6:.0f} us"
    )
    return "\n".join(lines)


def test_stacked_horizon_speedup():
    """The acceptance gate: >= 1.4x for every count >= 8 candidates."""
    rows = sweep_rows()
    t_plan, t_batch, n_batch = epoch_times()
    emit("dnor_plan.txt", render(rows, t_plan, t_batch, n_batch))
    payload = {
        "n_modules": N_MODULES,
        "gate": {"min_configs": GATED_COUNT, "min_speedup": GATE_SPEEDUP},
        "configs": [
            {
                "n_configs": count,
                "sequential_s": t_seq,
                "stacked_s": t_stk,
                "speedup": t_seq / t_stk,
            }
            for count, t_seq, t_stk in rows
        ],
        "plan_epoch_s": t_plan,
        "plan_batch_epoch_s": t_batch,
        "plan_batch_candidates": n_batch,
    }
    path = write_artifact("dnor_plan.json", json.dumps(payload, indent=2))
    print(f"\n[dnor-plan JSON saved to {path}]")

    gated = [row for row in rows if row[0] >= GATED_COUNT]
    assert gated, f"no benchmarked count reaches {GATED_COUNT} configurations"
    for count, t_seq, t_stk in gated:
        assert t_seq / t_stk >= GATE_SPEEDUP, (
            f"stacked horizon kernel only {t_seq / t_stk:.2f}x the "
            f"sequential loop at {count} configurations"
        )
