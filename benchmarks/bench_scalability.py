"""Scalability ablation — INOR's O(N) against EHTR's O(N^3) class.

The paper's motivating claim (Secs. I and VI-B): INOR scales to
"larger scale systems such as industrial boilers and heat exchangers"
where the prior algorithm's runtime explodes.  This bench measures
both algorithms across array sizes and regenerates the runtime-vs-N
table, checking the growth-rate gap.
"""

import os
import time

import numpy as np
import pytest

from conftest import emit
from repro.core.dnor import thevenin_from_temps
from repro.core.ehtr import ehtr
from repro.core.inor import inor
from repro.power.charger import TEGCharger
from repro.teg.datasheet import TGM_199_1_4_0_8

#: Override with e.g. ``REPRO_BENCH_SIZES=25,50,100`` for a CI smoke run.
SIZES = tuple(
    int(s)
    for s in os.environ.get("REPRO_BENCH_SIZES", "25,50,100,200,400").split(",")
)


def instance(n: int):
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0.0, 1.0, n))
    temps = 25.0 + delta_t
    return thevenin_from_temps(TGM_199_1_4_0_8, temps, 25.0)


def measure(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def scaling_table():
    charger = TEGCharger()
    rows = []
    for n in SIZES:
        emf, res = instance(n)
        t_inor = measure(lambda: inor(emf, res, charger=charger), repeats=5)
        t_ehtr = measure(lambda: ehtr(emf, res), repeats=1 if n >= 200 else 2)
        rows.append((n, t_inor, t_ehtr))
    return rows


def render_scaling(rows) -> str:
    lines = [
        "Scalability — single-reconfiguration runtime vs array size",
        f"{'N':>6s} {'INOR (ms)':>12s} {'EHTR (ms)':>12s} {'EHTR/INOR':>11s}",
    ]
    for n, t_inor, t_ehtr in rows:
        lines.append(
            f"{n:6d} {t_inor * 1e3:12.3f} {t_ehtr * 1e3:12.1f} "
            f"{t_ehtr / t_inor:11.0f}x"
        )
    n0, i0, e0 = rows[0]
    n1, i1, e1 = rows[-1]
    scale = n1 / n0
    lines.append("")
    lines.append(
        f"Growth {n0} -> {n1} modules ({scale:.0f}x): "
        f"INOR {i1 / i0:.1f}x, EHTR {e1 / e0:.1f}x"
    )
    lines.append(
        "Paper comparison: INOR grows ~linearly; EHTR's superlinear blow-up "
        "is why the paper restricts it to N=100 and calls reconfiguration "
        "at boiler scale infeasible for prior work."
    )
    return "\n".join(lines)


def test_scalability_growth(benchmark, scaling_table):
    rows = scaling_table
    n0, i0, e0 = rows[0]
    n1, i1, e1 = rows[-1]
    scale = n1 / n0

    # INOR stays within ~2x of linear growth; EHTR grows much faster.
    assert i1 / i0 < 2.5 * scale
    assert e1 / e0 > 4.0 * (i1 / i0)
    # The runtime gap widens with N.
    assert rows[-1][2] / rows[-1][1] > rows[0][2] / rows[0][1]

    emit("scalability.txt", render_scaling(rows))

    emf, res = instance(400)
    charger = TEGCharger()
    result = benchmark(lambda: inor(emf, res, charger=charger))
    assert result.mpp.power_w > 0.0
