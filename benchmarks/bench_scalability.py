"""Scalability ablation — INOR at boiler scale against EHTR's O(N^3) class.

The paper's motivating claim (Secs. I and VI-B): INOR scales to
"larger scale systems such as industrial boilers and heat exchangers"
where the prior algorithm's runtime explodes.  This bench measures the
algorithms across array sizes up to N=4000, regenerates the
runtime-vs-N table, writes a machine-readable
``benchmarks/results/scalability.json`` artifact, and gates INOR's
growth at sub-quadratic (log–log slope) — the property that makes the
boiler-scale regime reachable at all.

EHTR is only measured up to ``REPRO_BENCH_EHTR_MAX`` modules (default
400): its growth class is the *reason* for the cap, and extrapolating
the measured ratios already shows the gap.
"""

import json
import math
import os
import time

import numpy as np
import pytest

from conftest import emit, write_artifact
from repro.core.dnor import thevenin_from_temps
from repro.core.ehtr import ehtr
from repro.core.inor import inor
from repro.power.charger import TEGCharger
from repro.teg.datasheet import TGM_199_1_4_0_8

#: Override with e.g. ``REPRO_BENCH_SIZES=100,400`` for a CI smoke run.
SIZES = tuple(
    int(s)
    for s in os.environ.get(
        "REPRO_BENCH_SIZES", "100,400,1000,4000"
    ).split(",")
)

#: Largest N the O(N^3)-class EHTR search is timed at.
EHTR_MAX = int(os.environ.get("REPRO_BENCH_EHTR_MAX", "400"))

#: Gate: fitted log–log slope of INOR runtime vs N must stay below
#: this, i.e. clearly sub-quadratic (the kernels are ~linear; the bound
#: leaves room for cache effects and allocator noise at N=4000).
INOR_SLOPE_GATE = 1.8


def instance(n: int):
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0.0, 1.0, n))
    temps = 25.0 + delta_t
    return thevenin_from_temps(TGM_199_1_4_0_8, temps, 25.0)


def measure(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def loglog_slope(sizes, seconds) -> float:
    """Least-squares slope of log(runtime) against log(N)."""
    x = np.log(np.asarray(sizes, dtype=float))
    y = np.log(np.asarray(seconds, dtype=float))
    x_c = x - x.mean()
    return float((x_c * (y - y.mean())).sum() / (x_c * x_c).sum())


@pytest.fixture(scope="module")
def scaling_table():
    charger = TEGCharger()
    rows = []
    for n in SIZES:
        emf, res = instance(n)
        t_inor = measure(
            lambda: inor(emf, res, charger=charger),
            repeats=3 if n >= 1000 else 5,
        )
        t_ehtr = None
        if n <= EHTR_MAX:
            t_ehtr = measure(lambda: ehtr(emf, res), repeats=1 if n >= 200 else 2)
        rows.append((n, t_inor, t_ehtr))
    return rows


def render_scaling(rows, slope: float) -> str:
    lines = [
        "Scalability — single-reconfiguration runtime vs array size",
        f"{'N':>6s} {'INOR (ms)':>12s} {'EHTR (ms)':>12s} {'EHTR/INOR':>11s}",
    ]
    for n, t_inor, t_ehtr in rows:
        ehtr_ms = f"{t_ehtr * 1e3:12.1f}" if t_ehtr is not None else f"{'—':>12s}"
        ratio = (
            f"{t_ehtr / t_inor:11.0f}x" if t_ehtr is not None else f"{'—':>12s}"
        )
        lines.append(f"{n:6d} {t_inor * 1e3:12.3f} {ehtr_ms} {ratio}")
    n0, i0, _ = rows[0]
    n1, i1, _ = rows[-1]
    lines.append("")
    lines.append(
        f"Growth {n0} -> {n1} modules ({n1 / n0:.0f}x): INOR {i1 / i0:.1f}x "
        f"(log-log slope {slope:.2f}, gate < {INOR_SLOPE_GATE})"
    )
    lines.append(
        f"EHTR timed only to N={EHTR_MAX}: its superlinear blow-up is why "
        "the paper restricts prior work to N=100 and calls boiler-scale "
        "reconfiguration infeasible without INOR."
    )
    return "\n".join(lines)


def test_scalability_growth(benchmark, scaling_table):
    rows = scaling_table
    sizes = [n for n, _, _ in rows]
    inor_s = [t for _, t, _ in rows]
    slope = loglog_slope(sizes, inor_s)

    # The CI gate: INOR must scale sub-quadratically to boiler sizes.
    assert slope < INOR_SLOPE_GATE, (
        f"INOR log-log growth slope {slope:.2f} >= {INOR_SLOPE_GATE}; "
        f"table: {rows}"
    )
    measured = [(n, ti, te) for n, ti, te in rows if te is not None]
    if len(measured) >= 2:
        # EHTR's growth class is visibly worse and the gap widens.
        (na, ia, ea), (nb, ib, eb) = measured[0], measured[-1]
        if nb > na:
            assert eb / ea > 2.0 * (ib / ia)
            assert eb / ib > ea / ia

    emit("scalability.txt", render_scaling(rows, slope))
    payload = {
        "sizes": sizes,
        "inor_seconds": inor_s,
        "ehtr_seconds": [t for _, _, t in rows],
        "ehtr_max_n": EHTR_MAX,
        "inor_loglog_slope": slope,
        "slope_gate": INOR_SLOPE_GATE,
        "sub_quadratic": bool(slope < INOR_SLOPE_GATE),
    }
    write_artifact("scalability.json", json.dumps(payload, indent=2) + "\n")
    assert math.isfinite(slope)

    emf, res = instance(sizes[-1])
    charger = TEGCharger()
    result = benchmark(lambda: inor(emf, res, charger=charger))
    assert result.mpp.power_w > 0.0
