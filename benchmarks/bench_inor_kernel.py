"""INOR candidate sweep — scalar per-candidate loop vs batched kernel.

Algorithm 1 scores every group count in the converter-derived
``[n_min, n_max]`` window; the pre-vectorisation implementation paid
one greedy-partition walk plus one
:func:`~repro.teg.network.array_mpp` call (and one scalar converter
evaluation) per candidate.  The batched kernels reduce both halves to
single passes: :func:`~repro.teg.network.partition_multi` builds every
candidate partition from one cumulative-current prefix table, and
:func:`~repro.teg.network.array_mpp_multi` + the charger's
``delivered_batch`` score the whole window in one NumPy reduction —
bit-identical to the loop throughout.

Acceptance bars, for every window of ``n_max - n_min >= 20``
candidates:

* the batched *sweep* (scoring only) must be >= 3x the scalar loop;
* the **end-to-end** ``inor()`` call — build + score + rank — must be
  >= 3x the ``kernel="scalar"`` reference.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_INOR_MODULES`` — chain length (default 100).
* ``REPRO_BENCH_INOR_WINDOWS`` — comma list of window widths
  (default ``8,24,48,100``; widths are clamped to the chain length).
"""

import json
import os
import time

import numpy as np

from conftest import emit, write_artifact
from repro.core.inor import greedy_balanced_partition, inor
from repro.power.charger import TEGCharger
from repro.teg.network import array_mpp, array_mpp_multi

N_MODULES = int(os.environ.get("REPRO_BENCH_INOR_MODULES", "100"))
WINDOWS = tuple(
    min(int(w), N_MODULES)
    for w in os.environ.get("REPRO_BENCH_INOR_WINDOWS", "8,24,48,100").split(",")
)

#: Windows at least this wide carry the acceptance gates.
GATED_WIDTH = 20
GATE_SPEEDUP = 3.0
#: End-to-end inor() gate — the whole decision (build + score + rank).
GATE_INOR_SPEEDUP = 3.0


def measure(fn, repeats: int = 7, inner: int = 100) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def _profile(n: int):
    """The canonical decaying radiator profile at N modules."""
    emf = 2.0 * np.exp(-np.linspace(0.0, 2.2, n))
    resistance = np.full(n, 0.8)
    return emf, resistance


def sweep_rows():
    """(window, t_scalar, t_batched, t_inor_scalar, t_inor_batched)."""
    emf, resistance = _profile(N_MODULES)
    currents = emf / (2.0 * resistance)
    charger = TEGCharger()
    rows = []
    for width in WINDOWS:
        candidates = [
            greedy_balanced_partition(currents, g) for g in range(1, width + 1)
        ]

        def scalar_sweep():
            best = -float("inf")
            for starts in candidates:
                mpp = array_mpp(emf, resistance, starts)
                score = charger.delivered_at_mpp(mpp)
                if score > best:
                    best = score
            return best

        def batched_sweep():
            # validate=False mirrors inor(kernel="batched"): the greedy
            # partitions are correct by construction, exactly as the
            # scalar loop's array_mpp validation was the old inor path.
            power, voltage, _ = array_mpp_multi(
                emf, resistance, candidates, validate=False
            )
            scores = charger.delivered_batch(power, voltage)
            return float(scores[int(np.argmax(scores))])

        assert scalar_sweep() == batched_sweep()  # the equivalence contract
        rows.append(
            (
                width,
                measure(scalar_sweep),
                measure(batched_sweep),
                measure(
                    lambda: inor(
                        emf, resistance, charger=charger,
                        n_min=1, n_max=width, kernel="scalar",
                    ),
                    inner=50,
                ),
                measure(
                    lambda: inor(
                        emf, resistance, charger=charger,
                        n_min=1, n_max=width, kernel="batched",
                    ),
                    inner=50,
                ),
            )
        )
    return rows


def render_rows(rows) -> str:
    lines = [
        f"INOR candidate sweep - scalar loop vs batched kernel "
        f"(N = {N_MODULES} modules)",
        f"{'window':>7s} {'scalar (us)':>12s} {'batched (us)':>13s} "
        f"{'speedup':>8s} {'inor() speedup':>15s}",
    ]
    for width, t_s, t_b, t_is, t_ib in rows:
        lines.append(
            f"{width:7d} {t_s * 1e6:12.1f} {t_b * 1e6:13.1f} "
            f"{t_s / t_b:7.1f}x {t_is / t_ib:14.1f}x"
        )
    lines.append("")
    lines.append(
        "sweep = score every candidate group count (array MPP + converter "
        "ranking); inor() additionally builds the greedy partitions."
    )
    return "\n".join(lines)


def test_batched_sweep_speedup():
    """The acceptance gates: sweep *and* end-to-end inor() >= 3x for
    every window >= 20 candidates."""
    rows = sweep_rows()
    emit("inor_kernel.txt", render_rows(rows))
    payload = {
        "n_modules": N_MODULES,
        "gate": {
            "min_window": GATED_WIDTH,
            "min_speedup": GATE_SPEEDUP,
            "min_inor_speedup": GATE_INOR_SPEEDUP,
        },
        "windows": [
            {
                "window": width,
                "scalar_sweep_s": t_s,
                "batched_sweep_s": t_b,
                "sweep_speedup": t_s / t_b,
                "inor_scalar_s": t_is,
                "inor_batched_s": t_ib,
                "inor_speedup": t_is / t_ib,
            }
            for width, t_s, t_b, t_is, t_ib in rows
        ],
    }
    path = write_artifact("inor_kernel.json", json.dumps(payload, indent=2))
    print(f"\n[inor-kernel JSON saved to {path}]")

    gated = [row for row in rows if row[0] >= GATED_WIDTH]
    assert gated, f"no benchmarked window reaches {GATED_WIDTH} candidates"
    for width, t_s, t_b, t_is, t_ib in gated:
        assert t_s / t_b >= GATE_SPEEDUP, (
            f"batched sweep only {t_s / t_b:.1f}x faster than the scalar "
            f"loop at window {width}"
        )
        assert t_is / t_ib >= GATE_INOR_SPEEDUP, (
            f"end-to-end inor(kernel='batched') only {t_is / t_ib:.1f}x "
            f"faster than kernel='scalar' at window {width} — the "
            f"partition build is the remaining cost"
        )
