"""Ablation — how near-optimal is "near-optimal"?

Quantifies INOR's and EHTR's optimality gaps against exact references
(brute force where feasible, parametric DP beyond), over radiator-like
and randomly perturbed temperature fields.  This grounds the paper's
"near-optimal" language in a measured number.
"""

import numpy as np
import pytest

from conftest import emit
from repro.core.ehtr import ehtr
from repro.core.exhaustive import (
    best_partition_brute_force,
    best_partition_parametric_dp,
)
from repro.core.inor import inor
from repro.teg.datasheet import TGM_199_1_4_0_8


def field(n: int, seed: int, noise: float) -> tuple:
    rng = np.random.default_rng(seed)
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0.0, 1.0, n))
    delta_t = np.clip(delta_t + rng.normal(0.0, noise, n), 1.0, None)
    alpha = TGM_199_1_4_0_8.material.seebeck_v_per_k * TGM_199_1_4_0_8.n_couples
    emf = alpha * delta_t
    res = np.full(n, TGM_199_1_4_0_8.internal_resistance())
    return emf, res


@pytest.fixture(scope="module")
def gap_statistics():
    rows = []
    # Small chains: certified against brute force.
    for seed in range(8):
        emf, res = field(12, seed, noise=3.0)
        exact = best_partition_brute_force(emf, res).mpp.power_w
        rows.append(
            (
                "N=12/brute",
                seed,
                inor(emf, res).mpp.power_w / exact,
                ehtr(emf, res).mpp.power_w / exact,
            )
        )
    # Paper-scale chains: against the parametric-DP frontier.
    for seed in range(4):
        emf, res = field(100, seed, noise=3.0)
        exact = best_partition_parametric_dp(emf, res, n_sweep=48).mpp.power_w
        rows.append(
            (
                "N=100/dp",
                seed,
                inor(emf, res).mpp.power_w / exact,
                ehtr(emf, res).mpp.power_w / exact,
            )
        )
    return rows


def render_gaps(rows) -> str:
    lines = [
        "Near-optimality — heuristic MPP power as a fraction of the exact optimum",
        f"{'case':>12s} {'seed':>5s} {'INOR':>8s} {'EHTR':>8s}",
    ]
    for case, seed, inor_frac, ehtr_frac in rows:
        lines.append(f"{case:>12s} {seed:5d} {inor_frac:8.4f} {ehtr_frac:8.4f}")
    inor_fracs = np.array([r[2] for r in rows])
    ehtr_fracs = np.array([r[3] for r in rows])
    lines.append("")
    lines.append(
        f"worst case: INOR {inor_fracs.min():.4f}, EHTR {ehtr_fracs.min():.4f}"
    )
    lines.append(
        f"mean:       INOR {inor_fracs.mean():.4f}, EHTR {ehtr_fracs.mean():.4f}"
    )
    lines.append(
        "Paper comparison: both heuristics sit within a few percent of the "
        "optimum (Table I has them within 1% of each other), justifying "
        "'near-optimal'."
    )
    return "\n".join(lines)


def test_near_optimality(benchmark, gap_statistics):
    rows = gap_statistics
    inor_fracs = np.array([r[2] for r in rows])
    ehtr_fracs = np.array([r[3] for r in rows])

    assert inor_fracs.min() > 0.93
    assert ehtr_fracs.min() > 0.95
    assert inor_fracs.mean() > 0.96

    emit("near_optimality.txt", render_gaps(rows))

    emf, res = field(100, 0, noise=3.0)
    result = benchmark(lambda: inor(emf, res))
    assert result.mpp.power_w > 0.0
