"""Ablation — graceful degradation under stuck-switch faults.

Beyond the paper (its fabric is assumed healthy): a production
reconfiguration controller must keep harvesting through single-switch
failures.  This bench injects growing numbers of stuck junctions into
the N = 100 chain and measures fault-aware INOR's delivered power,
producing the degradation curve a reliability engineer would ask for.

Expected shape: low single-digit percent loss per handful of faults —
the partition routes around stuck junctions — with stuck-parallel
faults slightly cheaper than stuck-series ones (merging neighbours is
gentler than forcing a boundary).
"""

import numpy as np
import pytest

from conftest import emit
from repro.core.fault_aware import fault_aware_inor
from repro.power.charger import TEGCharger
from repro.teg.datasheet import TGM_199_1_4_0_8
from repro.teg.faults import FaultMask

N_MODULES = 100
SEEDS = range(6)


def field():
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0.0, 1.0, N_MODULES))
    alpha = TGM_199_1_4_0_8.material.seebeck_v_per_k * TGM_199_1_4_0_8.n_couples
    return alpha * delta_t, np.full(N_MODULES, TGM_199_1_4_0_8.internal_resistance())


@pytest.fixture(scope="module")
def degradation_curve():
    emf, res = field()
    charger = TEGCharger()
    healthy = fault_aware_inor(
        emf, res, FaultMask.healthy(N_MODULES), charger=charger
    ).delivered_power_w
    rows = []
    for n_faults in (1, 2, 4, 8, 16):
        n_series = n_faults // 2
        n_parallel = n_faults - n_series
        fractions = []
        for seed in SEEDS:
            mask = FaultMask.random(N_MODULES, n_series, n_parallel, seed=seed)
            result = fault_aware_inor(emf, res, mask, charger=charger)
            assert mask.is_feasible(result.config.starts)
            fractions.append(result.delivered_power_w / healthy)
        rows.append((n_faults, float(np.mean(fractions)), float(np.min(fractions))))
    return healthy, rows


def render(healthy, rows) -> str:
    lines = [
        f"Fault tolerance — fault-aware INOR on the N={N_MODULES} chain",
        f"healthy delivered power: {healthy:.2f} W",
        f"{'stuck junctions':>16s} {'mean retained':>14s} {'worst retained':>15s}",
    ]
    for n_faults, mean_frac, worst_frac in rows:
        lines.append(
            f"{n_faults:16d} {mean_frac:14.3f} {worst_frac:15.3f}"
        )
    lines.append("")
    lines.append(
        "Shape: percent-level loss per handful of stuck switches; the "
        "constrained partition routes around faults instead of dying — "
        "the graceful-degradation property a vehicle integration needs."
    )
    return "\n".join(lines)


def test_fault_tolerance(benchmark, degradation_curve):
    healthy, rows = degradation_curve

    retained = {n: mean for n, mean, _ in rows}
    # Single faults are nearly free; even 16 stuck junctions keep the
    # large majority of the harvest.
    assert retained[1] > 0.99
    assert retained[4] > 0.95
    assert retained[16] > 0.80
    # Degradation is monotone in fault count (on the mean curve).
    means = [mean for _, mean, _ in rows]
    assert all(a >= b - 0.01 for a, b in zip(means, means[1:]))

    emit("fault_tolerance.txt", render(healthy, rows))

    emf, res = field()
    charger = TEGCharger()
    mask = FaultMask.random(N_MODULES, 2, 2, seed=0)
    result = benchmark(lambda: fault_aware_inor(emf, res, mask, charger=charger))
    assert result.mpp.power_w > 0.0
