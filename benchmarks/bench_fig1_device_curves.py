"""Fig. 1 — I-V and P-V characteristics of the TGM-199-1.4-0.8 module.

Regenerates the curve family of the paper's Fig. 1: one I-V and one
P-V trace per temperature difference, with the maximum power point
(the figure's black dots) marked.  The benchmark measures the curve
evaluation kernel.
"""

import numpy as np

from conftest import emit
from repro.teg.datasheet import TGM_199_1_4_0_8

#: Temperature differences of the regenerated curve family (kelvin).
DELTA_TS = (10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0)


def render_fig1() -> str:
    module = TGM_199_1_4_0_8
    lines = [
        f"Fig. 1 — {module.name}: I-V / P-V family with MPP markers",
        f"{'dT (K)':>8s} {'Voc (V)':>9s} {'Isc (A)':>9s} "
        f"{'Vmpp (V)':>9s} {'Impp (A)':>9s} {'Pmpp (W)':>9s}",
    ]
    for delta_t in DELTA_TS:
        mpp = module.mpp(delta_t)
        lines.append(
            f"{delta_t:8.0f} {module.open_circuit_voltage(delta_t):9.3f} "
            f"{module.short_circuit_current(delta_t):9.3f} "
            f"{mpp.voltage_v:9.3f} {mpp.current_a:9.3f} {mpp.power_w:9.3f}"
        )
    lines.append("")
    lines.append("P-V curve samples (power in W at voltage fractions of Voc):")
    fractions = np.linspace(0.0, 1.0, 11)
    header = f"{'dT (K)':>8s}" + "".join(f"{f:>7.1f}" for f in fractions)
    lines.append(header)
    for delta_t in DELTA_TS:
        voltage, power = module.pv_curve(delta_t, 11)
        lines.append(
            f"{delta_t:8.0f}" + "".join(f"{p:7.3f}" for p in power)
        )
    lines.append("")
    lines.append(
        "Shape checks: linear I-V, parabolic P-V, MPP at Voc/2, "
        "Pmpp quadratic in dT (all asserted)."
    )
    return "\n".join(lines)


def test_fig1_device_curves(benchmark):
    """Benchmark the curve kernel; regenerate the Fig. 1 table."""
    module = TGM_199_1_4_0_8

    def curve_kernel():
        total = 0.0
        for delta_t in DELTA_TS:
            _, power = module.pv_curve(delta_t, 201)
            total += float(power.max())
        return total

    peak_sum = benchmark(curve_kernel)

    # Shape assertions backing the rendered claim.
    for delta_t in DELTA_TS:
        voltage, current = module.iv_curve(delta_t, 101)
        slopes = np.diff(current) / np.diff(voltage)
        assert np.allclose(slopes, slopes[0])
        mpp = module.mpp(delta_t)
        assert mpp.voltage_v == module.open_circuit_voltage(delta_t) / 2.0
    assert abs(module.mpp_power(60.0) - 4.0 * module.mpp_power(30.0)) < 1e-9
    assert peak_sum > 0.0

    emit("fig1_device_curves.txt", render_fig1())
