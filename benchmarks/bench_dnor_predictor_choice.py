"""Ablation — DNOR end-to-end with each of the three predictors.

The paper selects MLR from MAPE and runtime (Fig. 5); this ablation
closes the loop by running the *whole system* (Algorithm 2 inside the
closed-loop simulator) with MLR, BPNN and SVR, plus the naive
persistence baseline.  Expected shape: harvested energy barely moves
(all predictors are accurate enough for a 1-2 s horizon), but the
controller's amortised runtime explodes for the trained predictors —
runtime, not accuracy, is what makes MLR the only sensible choice.
"""

import numpy as np
import pytest

from conftest import emit
from repro.core.oracle import make_oracle_policy
from repro.prediction.baselines import PersistencePredictor
from repro.prediction.bpnn import BPNNPredictor
from repro.prediction.mlr import MLRPredictor
from repro.prediction.svr import SVRPredictor
from repro.sim.scenario import default_scenario

DURATION_S = 120.0


def _true_temps(scenario):
    trace = scenario.trace
    rows = np.empty((trace.n_samples, scenario.n_modules))
    for i in range(trace.n_samples):
        op = scenario.radiator.operating_point(
            coolant_inlet_c=float(trace.coolant_inlet_c[i]),
            coolant_flow_kg_s=float(trace.coolant_flow_kg_s[i]),
            ambient_c=float(trace.ambient_c[i]),
            air_flow_kg_s=float(trace.air_flow_kg_s[i]),
            n_modules=scenario.n_modules,
        )
        rows[i] = float(trace.ambient_c[i]) + op.delta_t_k
    return rows


@pytest.fixture(scope="module")
def runs():
    results = {}
    for predictor in (
        MLRPredictor(),
        BPNNPredictor(epochs=15, seed=1),
        SVRPredictor(epochs=10, seed=1),
        PersistencePredictor(),
    ):
        scenario = default_scenario(duration_s=DURATION_S, seed=2018)
        simulator = scenario.make_simulator()
        policy = scenario.make_dnor_policy(predictor=predictor)
        results[predictor.name] = simulator.run(policy, scenario.make_charger())
    # The unrealisable upper bound: Algorithm 2 with perfect foresight.
    scenario = default_scenario(duration_s=DURATION_S, seed=2018)
    simulator = scenario.make_simulator()
    oracle_policy = make_oracle_policy(scenario, _true_temps(scenario))
    results["Oracle"] = simulator.run(oracle_policy, scenario.make_charger())
    return results


def render(results) -> str:
    lines = [
        f"DNOR predictor ablation over {DURATION_S:.0f} s",
        f"{'predictor':>10s} {'net energy (J)':>15s} {'switches':>9s} "
        f"{'overhead (J)':>13s} {'avg runtime (ms)':>17s}",
    ]
    for name, result in results.items():
        lines.append(
            f"{name:>10s} {result.energy_output_j:15.1f} "
            f"{result.switch_count:9d} {result.switch_overhead_j:13.2f} "
            f"{result.average_runtime_ms:17.3f}"
        )
    lines.append("")
    lines.append(
        "Paper comparison: all predictors (even the perfect-foresight "
        "oracle) harvest within ~1% of each other at this horizon, but "
        "the trained predictors cost orders of magnitude more "
        "controller time — MLR's O(N) fit is what keeps DNOR's "
        "amortised runtime below INOR's (Table I), and the tiny "
        "MLR-to-oracle gap shows prediction accuracy is not the "
        "binding constraint."
    )
    return "\n".join(lines)


def test_dnor_predictor_choice(benchmark, runs):
    energies = {name: r.energy_output_j for name, r in runs.items()}
    runtimes = {name: r.average_runtime_ms for name, r in runs.items()}

    # Harvest barely depends on the predictor at a 1-s horizon,
    # including against the perfect-foresight oracle...
    spread = max(energies.values()) / min(energies.values())
    assert spread < 1.02
    assert energies["MLR"] > energies["Oracle"] * 0.99
    # ...but the controller cost does, decisively.
    assert runtimes["MLR"] < runtimes["BPNN"] / 5
    assert runtimes["MLR"] < runtimes["SVR"] / 3

    emit("dnor_predictor_choice.txt", render(runs))

    benchmark(lambda: render(runs))
