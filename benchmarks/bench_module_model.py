"""Module-model gates: segmented EMF must stay vectorised.

The module-model protocol's hot loop is :meth:`SegmentedModule.emf` —
the physics plane hands it whole ``(T, N)`` trace matrices and expects
one elementwise pass per *segment* (a handful), never per sample.  A
silently de-vectorised implementation would multiply every segmented
scenario's physics precompute by the trace length, so this harness
gates it:

1. **Vectorised segmented ``emf`` beats the per-sample scalar reference
   (:func:`segmented_emf_reference`) by >= 3x** on a trace-sized
   matrix, in both the nominal and the mean-temperature path.
2. **The timing doubles as a parity check** — the scalar reference must
   reproduce the vectorised output bitwise, which is the pin that lets
   segmented modules ride the same cache/fingerprint machinery as the
   single-material model.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_MODULE_SAMPLES`` — trace length (default 1500).
* ``REPRO_BENCH_MODULE_MODULES`` — module positions N (default 64).
"""

import json
import os
import time

import numpy as np
from conftest import emit

from repro.teg.materials import (
    BISMUTH_TELLURIDE,
    LEAD_TELLURIDE,
    SKUTTERUDITE,
)
from repro.teg.segmented import (
    ModuleSegment,
    SegmentedModule,
    segmented_emf_reference,
)

SAMPLES = int(os.environ.get("REPRO_BENCH_MODULE_SAMPLES", "1500"))
MODULES = int(os.environ.get("REPRO_BENCH_MODULE_MODULES", "64"))

#: Vectorised segmented EMF vs the same samples through the scalar
#: reference walk.  The real margin is orders of magnitude; 3x is the
#: floor that still fails a silently de-vectorised path.
GATE_SEGMENTED_SPEEDUP = 3.0

MODULE = SegmentedModule(
    name="SEG-3-BENCH",
    segments=(
        ModuleSegment(material=SKUTTERUDITE, n_couples=100),
        ModuleSegment(material=LEAD_TELLURIDE, n_couples=80),
        ModuleSegment(material=BISMUTH_TELLURIDE, n_couples=60),
    ),
)


def _trace_matrices():
    rng = np.random.default_rng(42)
    delta = rng.uniform(5.0, 120.0, (SAMPLES, MODULES))
    mean = rng.uniform(60.0, 350.0, (SAMPLES, MODULES))
    return delta, mean


def _time(fn, repeats=3):
    best = np.inf
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _gate(tag, delta, mean):
    fast_s, fast = _time(lambda: MODULE.emf(delta, mean))
    slow_s, slow = _time(
        lambda: segmented_emf_reference(MODULE, delta, mean), repeats=1
    )

    # Parity first: the scalar walk must reproduce the batch bitwise.
    assert np.array_equal(fast, slow)

    speedup = slow_s / fast_s
    emit(
        f"bench_module_model_{tag}.json",
        json.dumps(
            {
                "samples": SAMPLES,
                "modules": MODULES,
                "segments": len(MODULE.segments),
                "vectorised_s": fast_s,
                "per_sample_loop_s": slow_s,
                "speedup": speedup,
                "gate": GATE_SEGMENTED_SPEEDUP,
            },
            indent=2,
        ),
    )
    assert speedup >= GATE_SEGMENTED_SPEEDUP, (
        f"vectorised segmented emf ({tag}) only {speedup:.1f}x over the "
        f"per-sample reference (gate {GATE_SEGMENTED_SPEEDUP}x) — the "
        f"segment sum has de-vectorised"
    )


def test_segmented_emf_nominal_beats_per_sample_loop():
    delta, _ = _trace_matrices()
    _gate("nominal", delta, None)


def test_segmented_emf_mean_temp_beats_per_sample_loop():
    delta, mean = _trace_matrices()
    _gate("mean_temp", delta, mean)
