"""Ablation — the prior-work fixed-period trade-off vs DNOR.

The paper's introduction dismisses period tuning ("former researchers
have also attempted to find an optimized reconfiguration period ...
the results are not remarkable") as the cure for switching overhead.
This bench implements that prior approach — sweep INOR's fixed period,
keep the best — and checks the dismissal: the tuned period must trail
DNOR on the same trace.
"""

import pytest

from conftest import emit
from repro.core.period_tradeoff import sweep_fixed_period
from repro.sim.scenario import default_scenario

DURATION_S = 200.0
PERIODS_S = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


@pytest.fixture(scope="module")
def tradeoff_and_dnor():
    scenario = default_scenario(duration_s=DURATION_S, seed=2018)
    tradeoff = sweep_fixed_period(scenario, PERIODS_S)
    simulator = scenario.make_simulator()
    dnor = simulator.run(scenario.make_dnor_policy(), scenario.make_charger())
    return tradeoff, dnor


def render(tradeoff, dnor) -> str:
    lines = [
        f"Fixed-period INOR trade-off over {DURATION_S:.0f} s (prior work, "
        "Kim et al. [5] style)",
        tradeoff.table(),
        "",
        f"DNOR (prediction-gated): {dnor.energy_output_j:15.1f} J  "
        f"{dnor.switch_overhead_j:8.1f} J overhead  "
        f"{dnor.switch_count:4d} switches",
        "",
        "Paper comparison: no fixed period matches prediction-gated "
        "switching — short periods bleed overhead, long periods miss "
        "transients; DNOR adapts and tops the sweep.",
    ]
    return "\n".join(lines)


def test_period_tradeoff(benchmark, tradeoff_and_dnor):
    tradeoff, dnor = tradeoff_and_dnor

    # The sweep shows a genuine interior trade-off...
    energies = [p.energy_output_j for p in tradeoff.points]
    overheads = [p.result.switch_overhead_j for p in tradeoff.points]
    assert overheads == sorted(overheads, reverse=True)
    # ...and DNOR beats (or matches) its best point.
    assert dnor.energy_output_j >= tradeoff.best.energy_output_j * 0.998
    # The shortest period is not the best one (overhead bites).
    assert tradeoff.best.period_s > PERIODS_S[0]

    emit("period_tradeoff.txt", render(tradeoff, dnor))

    benchmark(lambda: tradeoff.table())
