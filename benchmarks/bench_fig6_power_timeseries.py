"""Fig. 6 — output power of the four schemes over a 120-second window.

Slices the shared 800-second suite to the paper's 120-second viewing
window and regenerates the power time series (downsampled for print),
with DNOR's executed switch instants marked as in the figure.

The benchmark measures the per-control-period simulation step cost via
a fresh 30-second INOR run.
"""

import numpy as np

from conftest import emit
from repro.sim.scenario import default_scenario

#: The plotted window within the 800-s experiment — chosen, like the
#: paper's, to contain a handful of DNOR switch points.
WINDOW = (600.0, 720.0)


def window_mask(time_s: np.ndarray) -> np.ndarray:
    return (time_s >= WINDOW[0]) & (time_s < WINDOW[1])


def render_fig6(results) -> str:
    sample = next(iter(results.values()))
    mask = window_mask(sample.time_s)
    times = sample.time_s[mask]
    stride = 8  # print every 4 s
    lines = [
        f"Fig. 6 — output power (W) during t = {WINDOW[0]:.0f}..{WINDOW[1]:.0f} s",
        f"{'t (s)':>7s}"
        + "".join(f"{name:>10s}" for name in results),
    ]
    for k in range(0, times.size, stride):
        row = f"{times[k]:7.1f}"
        for result in results.values():
            row += f"{result.delivered_power_w[mask][k]:10.2f}"
        lines.append(row)
    lines.append("")
    for name, result in results.items():
        mean_power = float(result.delivered_power_w[mask].mean())
        lines.append(f"{name:>9s} window mean power: {mean_power:7.2f} W")
    dnor = results["DNOR"]
    switches = [t for t in dnor.switch_times_s if WINDOW[0] <= t < WINDOW[1]]
    lines.append("")
    lines.append(
        "DNOR switch points in window (the figure's black dots): "
        + (", ".join(f"{t:.1f} s" for t in switches) if switches else "none")
    )
    lines.append(
        "Paper comparison: the three reconfiguration schemes overlap near "
        "the top, the static baseline runs markedly lower, DNOR switches "
        "only at isolated instants."
    )
    return "\n".join(lines)


def test_fig6_power_timeseries(benchmark, table1_results):
    results = table1_results
    mask = window_mask(next(iter(results.values())).time_s)

    means = {
        name: float(result.delivered_power_w[mask].mean())
        for name, result in results.items()
    }
    # Fig. 6 shape: reconfiguration schemes above the baseline.
    assert means["DNOR"] > means["Baseline"] * 1.1
    assert means["INOR"] > means["Baseline"] * 1.1
    assert means["EHTR"] > means["Baseline"] * 1.05
    # DNOR switch markers are sparse within the window.
    dnor_switches = [
        t for t in results["DNOR"].switch_times_s if WINDOW[0] <= t < WINDOW[1]
    ]
    assert len(dnor_switches) < 20

    emit("fig6_power_timeseries.txt", render_fig6(results))

    # Benchmark: a fresh short INOR closed-loop run (per-step cost).
    scenario = default_scenario(duration_s=30.0, seed=2018)
    simulator = scenario.make_simulator()

    def short_run():
        return simulator.run(scenario.make_inor_policy(), scenario.make_charger())

    result = benchmark.pedantic(short_run, rounds=1, iterations=1)
    assert result.delivered_energy_j > 0.0
