"""Streaming decision service — latency, stacking and refit gates.

Layer 6 earns its keep on three measurable claims, each gated here:

1. **Micro-batched epochs beat sequential decisions.**  K concurrent
   sessions resolved through the hub's single stacked ``inor_stack``
   pass per epoch must out-run the same rows decided one scalar-path
   ``inor`` call at a time — the whole point of stacking the
   ``(sessions, N)`` EMF matrix.
2. **Per-decision latency is interactive.**  The asyncio front-end's
   p50 per-decision wall time (feed → decision event, measured over a
   real TCP round trip) must stay well under a control period.
3. **Incremental refits are measurably cheaper than full refits.**
   ``MLRPredictor.partial_fit`` sliding a long window by a few rows
   must beat a fresh ``fit`` over the same window (the windowed
   normal-equation rank update is O(edge), not O(window)).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_STREAM_SESSIONS``   — hub fleet size (default 64).
* ``REPRO_BENCH_STREAM_DURATION_S`` — trace length (default 8).
* ``REPRO_BENCH_STREAM_MODULES``    — chain length N (default 16).
"""

import dataclasses
import json
import os
import time

import numpy as np
from conftest import emit, write_artifact

from repro.core.inor import inor
from repro.prediction.mlr import MLRPredictor
from repro.serve import SessionHub, StreamSession
from repro.serve.server import run_demo
from repro.sim.scenario import build_named_scenario

SESSIONS = int(os.environ.get("REPRO_BENCH_STREAM_SESSIONS", "64"))
DURATION_S = float(os.environ.get("REPRO_BENCH_STREAM_DURATION_S", "8"))
MODULES = int(os.environ.get("REPRO_BENCH_STREAM_MODULES", "16"))

#: Stacked hub epochs must beat per-row scalar-path decisions by at
#: least this factor at the default 64-session fleet.
GATE_STACKED_SPEEDUP = 2.0

#: p50 per-decision latency through the real asyncio server, seconds.
#: The control period is 0.5 s; a decision must cost a small fraction.
GATE_P50_LATENCY_S = 0.05

#: partial_fit sliding a 960-row window by 4 rows vs a fresh fit.
GATE_REFIT_SPEEDUP = 2.0


def _fleet(scenario):
    hub = SessionHub()
    sessions = [
        hub.add(
            StreamSession(
                dataclasses.replace(scenario, sensor_seed=4000 + k),
                "INOR",
                f"bench-{k:03d}",
            )
        )
        for k in range(SESSIONS)
    ]
    return hub, sessions


def test_stacked_epochs_beat_sequential(tmp_path):
    scenario = build_named_scenario(
        "porter-ii", duration_s=DURATION_S, n_modules=MODULES
    )
    trace = scenario.trace
    chunk = 8

    # Stacked: the service path — feed all sessions, one epoch per chunk.
    hub, sessions = _fleet(scenario)
    t0 = time.perf_counter()
    lo = 0
    while lo < trace.n_samples:
        hi = min(lo + chunk, trace.n_samples)
        for session in sessions:
            session.feed_trace(trace, lo, hi)
        hub.run_epoch()
        lo = hi
    t_stacked = time.perf_counter() - t0
    rows = hub.stats.rows_decided
    assert hub.stats.max_sessions_per_pass == SESSIONS

    # Sequential reference: the same decision rows, one inor() each.
    # (Replays each session's sensed inputs through the scalar path —
    # what K independent PeriodicPolicy loops would cost.)
    charger = scenario.make_charger(with_battery=False)
    module = scenario.module
    per_row_inputs = []
    for k in range(SESSIONS):
        sensed = dataclasses.replace(scenario, sensor_seed=4000 + k)
        session = StreamSession(sensed, "INOR", f"seq-{k:03d}")
        session.feed_trace(trace, 0, trace.n_samples)
        per_row_inputs.extend(
            (pending.emf_row,) for pending in session.pending
        )
    resistance = np.full(
        MODULES, module.material.resistance_ohm * module.n_couples
    )
    t0 = time.perf_counter()
    for (emf_row,) in per_row_inputs:
        inor(emf_row, resistance, charger=charger)
    t_sequential = time.perf_counter() - t0

    speedup = t_sequential / t_stacked
    lines = [
        f"sessions:            {SESSIONS}",
        f"decision rows:       {rows}",
        f"stacked passes:      {hub.stats.stacked_passes}",
        f"stacked wall:        {t_stacked * 1e3:9.1f} ms",
        f"sequential wall:     {t_sequential * 1e3:9.1f} ms",
        f"speedup:             {speedup:9.2f}x  (gate >= {GATE_STACKED_SPEEDUP}x)",
    ]
    emit("stream_stacking.txt", "\n".join(lines))
    write_artifact(
        "stream_stacking.json",
        json.dumps(
            {
                "sessions": SESSIONS,
                "rows": rows,
                "stacked_passes": hub.stats.stacked_passes,
                "stacked_s": t_stacked,
                "sequential_s": t_sequential,
                "speedup": speedup,
            },
            indent=2,
        ),
    )
    assert len(per_row_inputs) == rows
    assert speedup >= GATE_STACKED_SPEEDUP, (
        f"stacked epochs only {speedup:.2f}x over sequential "
        f"(gate {GATE_STACKED_SPEEDUP}x)"
    )


def test_serve_p50_decision_latency(tmp_path):
    """Per-decision latency through the real asyncio TCP front-end."""
    sessions = 4
    t0 = time.perf_counter()
    stats = run_demo(
        scenario_name="porter-ii",
        sessions=sessions,
        duration_s=DURATION_S,
        n_modules=MODULES,
        chunk=4,
        out_dir=str(tmp_path),
    )
    wall = time.perf_counter() - t0
    decisions = stats["rows_decided"]
    per_decision = wall / max(decisions, 1)
    lines = [
        f"sessions:       {sessions}",
        f"decisions:      {decisions}",
        f"total wall:     {wall * 1e3:9.1f} ms",
        f"per decision:   {per_decision * 1e3:9.3f} ms "
        f"(gate p50 <= {GATE_P50_LATENCY_S * 1e3:.0f} ms)",
        f"stacked passes: {stats['stacked_passes']}",
    ]
    emit("stream_latency.txt", "\n".join(lines))
    write_artifact(
        "stream_latency.json",
        json.dumps(
            {
                "sessions": sessions,
                "decisions": decisions,
                "wall_s": wall,
                "per_decision_s": per_decision,
                "stacked_passes": stats["stacked_passes"],
            },
            indent=2,
        ),
    )
    # Mean-over-run upper-bounds p50 here (the distribution has no
    # heavy head: every epoch does identical work).
    assert per_decision <= GATE_P50_LATENCY_S, (
        f"per-decision latency {per_decision * 1e3:.1f} ms over gate "
        f"{GATE_P50_LATENCY_S * 1e3:.0f} ms"
    )


def test_incremental_refit_beats_full(tmp_path):
    """partial_fit's O(edge) update vs a fresh O(window) fit."""
    rng = np.random.default_rng(42)
    window = 960
    chunk_rows = 4
    cols = MODULES
    repeats = 50
    history = rng.normal(60.0, 8.0, size=(window + repeats * chunk_rows, cols))

    streamed = MLRPredictor(lags=4, train_window=window)
    streamed.partial_fit(history[:window])
    t0 = time.perf_counter()
    for r in range(repeats):
        lo = window + r * chunk_rows
        streamed.partial_fit(history[lo : lo + chunk_rows])
    t_incremental = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for r in range(repeats):
        hi = window + (r + 1) * chunk_rows
        full = MLRPredictor(lags=4, train_window=window)
        full.fit(history[:hi])
    t_full = (time.perf_counter() - t0) / repeats

    speedup = t_full / t_incremental
    lines = [
        f"window rows:       {window} x {cols} modules",
        f"chunk rows:        {chunk_rows}",
        f"full refit:        {t_full * 1e6:9.1f} us",
        f"incremental:       {t_incremental * 1e6:9.1f} us",
        f"speedup:           {speedup:9.2f}x  (gate >= {GATE_REFIT_SPEEDUP}x)",
    ]
    emit("stream_refit.txt", "\n".join(lines))
    write_artifact(
        "stream_refit.json",
        json.dumps(
            {
                "window": window,
                "chunk_rows": chunk_rows,
                "modules": cols,
                "full_s": t_full,
                "incremental_s": t_incremental,
                "speedup": speedup,
            },
            indent=2,
        ),
    )
    assert speedup >= GATE_REFIT_SPEEDUP, (
        f"incremental refit only {speedup:.2f}x over full "
        f"(gate {GATE_REFIT_SPEEDUP}x)"
    )
