"""Fused DNOR epochs — dnor_stack grids vs per-case serial planning.

DNOR is the expensive policy in the boiler-scale regime: every epoch
runs a predictor refit, a forecast, an INOR proposal and a horizon
energy evaluation per case.  ``executor="gridstack"`` now fuses
homogeneous DNOR groups through :func:`repro.core.dnor.dnor_stack` —
one stacked INOR proposal pass and one stacked horizon-energy pass per
epoch for the whole grid, with only the per-lane regression solves left
sequential.  This bench drives a 16-case homogeneous noise-axis DNOR
grid through both executors, verifies the collations are bit-identical
(the speed-up must be free), and gates the fused wall-clock at
``>= DNOR_STACK_SPEEDUP_GATE`` over serial.

The physics precompute is shared and warmed before timing either
executor, so the measured ratio isolates the decision + electrical
fabric — the part the stacked epoch kernel actually fuses.
"""

import json
import os
import time

import numpy as np
import pytest

from conftest import emit, write_artifact
from repro.sim.engine import ExperimentRunner, grid_cases
from repro.sim.cache import PhysicsCache
from repro.sim.scenario import build_named_scenario

#: Cases in the homogeneous DNOR grid (a scanner-noise axis).
GRID_CASES = int(os.environ.get("REPRO_BENCH_DNOR_STACK_CASES", "16"))

#: Simulated trace length; override for CI smoke runs.
DURATION_S = float(os.environ.get("REPRO_BENCH_DNOR_STACK_DURATION_S", "120"))

#: Gate: fused grid wall-clock must beat per-case serial by this factor.
DNOR_STACK_SPEEDUP_GATE = 3.0

#: Result fields the two executors must reproduce byte-for-byte
#: (everything except the wall-clock runtime series).
_PINNED_FIELDS = (
    "gross_power_w",
    "delivered_power_w",
    "ideal_power_w",
    "array_voltage_v",
    "n_groups_series",
    "time_s",
)


@pytest.fixture(scope="module")
def grid():
    scenario = build_named_scenario("porter-ii", duration_s=DURATION_S)
    noise_axis = [0.01 + 0.005 * k for k in range(GRID_CASES)]
    cases = grid_cases([scenario], ["DNOR"], scanner_noise_std_k=noise_axis)
    assert len(cases) == GRID_CASES
    assert all(c.scenario.nominal_compute_s is not None for c in cases)
    cache = PhysicsCache()
    # Warm the shared physics once so neither timed run pays the solve.
    cache.get_or_compute(
        scenario.trace, scenario.radiator, scenario.module, scenario.n_modules
    )
    return cases, cache


def _timed_run(cases, cache, executor: str):
    t0 = time.perf_counter()
    collation = ExperimentRunner(cases, executor=executor, cache=cache).run()
    return collation, time.perf_counter() - t0


def test_dnor_stack_speedup(grid):
    cases, cache = grid
    serial, serial_s = _timed_run(cases, cache, "serial")
    stacked, stacked_s = _timed_run(cases, cache, "gridstack")

    # Identical results first: the fused epochs must be bit-exact.
    for (case_a, res_a), (case_b, res_b) in zip(serial, stacked):
        assert case_a.name == case_b.name
        assert res_a.scheme == res_b.scheme
        for field in _PINNED_FIELDS:
            a = getattr(res_a, field)
            b = getattr(res_b, field)
            assert a.tobytes() == b.tobytes(), (case_a.name, field)
        assert res_a.switch_times_s == res_b.switch_times_s
        assert res_a.overhead_events == res_b.overhead_events

    speedup = serial_s / stacked_s
    lines = [
        f"Fused DNOR epochs — {len(cases)}-case homogeneous DNOR grid",
        f"cases            : {len(cases)}",
        f"trace length     : {DURATION_S:.0f} s",
        f"serial           : {serial_s * 1e3:10.1f} ms",
        f"gridstack        : {stacked_s * 1e3:10.1f} ms",
        f"speedup          : {speedup:10.2f}x  (gate >= {DNOR_STACK_SPEEDUP_GATE}x)",
        "results          : bit-identical across executors",
    ]
    emit("dnor_stack.txt", "\n".join(lines))
    write_artifact(
        "dnor_stack.json",
        json.dumps(
            {
                "cases": len(cases),
                "duration_s": DURATION_S,
                "serial_seconds": serial_s,
                "gridstack_seconds": stacked_s,
                "speedup": speedup,
                "speedup_gate": DNOR_STACK_SPEEDUP_GATE,
                "bit_identical": True,
            },
            indent=2,
        )
        + "\n",
    )

    assert speedup >= DNOR_STACK_SPEEDUP_GATE, (
        f"dnor_stack speedup {speedup:.2f}x below the "
        f"{DNOR_STACK_SPEEDUP_GATE}x gate (serial {serial_s:.3f}s, "
        f"fused {stacked_s:.3f}s)"
    )

    delivered = np.array(
        [float(res.delivered_power_w.mean()) for _, res in stacked]
    )
    assert np.all(np.isfinite(delivered))
