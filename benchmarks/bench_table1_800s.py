"""Table I — 800-second performance and runtime comparison.

Regenerates the paper's headline table from the shared four-scheme
simulation suite and checks every shape claim:

* net energy ordering DNOR > INOR > EHTR >> Baseline,
* DNOR ~ +30% over the baseline,
* DNOR's switching overhead orders of magnitude below INOR/EHTR,
* EHTR's per-period runtime far above INOR's, DNOR amortised below INOR.

The benchmark entries measure the three algorithm kernels at N = 100 —
the quantities behind the table's "Average Runtime" row.
"""

import numpy as np
import pytest

from conftest import emit
from repro.core.dnor import DNORPlanner, thevenin_from_temps
from repro.core.ehtr import ehtr
from repro.core.inor import inor
from repro.core.overhead import SwitchingOverheadModel
from repro.power.charger import TEGCharger
from repro.prediction.mlr import MLRPredictor
from repro.sim.results import comparison_table
from repro.teg.datasheet import TGM_199_1_4_0_8

#: The paper's Table I, for side-by-side printing.
PAPER_TABLE1 = {
    "DNOR": dict(energy=43309.6, overhead=21.7, runtime_ms=2.6),
    "INOR": dict(energy=41375.6, overhead=2034.7, runtime_ms=4.1),
    "EHTR": dict(energy=41067.1, overhead=2160.3, runtime_ms=37.2),
    "Baseline": dict(energy=33543.4, overhead=None, runtime_ms=None),
}


def render_table1(results) -> str:
    lines = ["Table I — 800-second comparison (measured | paper)"]
    lines.append(comparison_table(list(results.values())))
    lines.append("")
    lines.append(f"{'':10s}{'measured':>14s}{'paper':>12s}")
    for name, result in results.items():
        paper = PAPER_TABLE1[name]
        lines.append(
            f"{name:10s}{result.energy_output_j:14.1f}{paper['energy']:12.1f}"
            "   Energy Output (J)"
        )
    dnor, inor_r, ehtr_r, base = (
        results["DNOR"],
        results["INOR"],
        results["EHTR"],
        results["Baseline"],
    )
    lines.append("")
    lines.append("Headline claims (measured vs paper):")
    lines.append(
        f"  DNOR vs baseline energy   {dnor.energy_output_j / base.energy_output_j:8.3f}x"
        f"   vs 1.291x"
    )
    lines.append(
        f"  INOR/DNOR switch overhead {inor_r.switch_overhead_j / dnor.switch_overhead_j:8.1f}x"
        f"   vs ~94x ('almost 100x')"
    )
    lines.append(
        f"  EHTR/INOR avg runtime     {ehtr_r.average_runtime_ms / inor_r.average_runtime_ms:8.1f}x"
        f"   vs ~9.1x"
    )
    lines.append(
        f"  EHTR/DNOR avg runtime     {ehtr_r.average_runtime_ms / dnor.average_runtime_ms:8.1f}x"
        f"   vs ~14.3x"
    )
    lines.append(
        f"  DNOR vs INOR energy       {dnor.energy_output_j / inor_r.energy_output_j:8.4f}x"
        f"   vs 1.0467x"
    )
    lines.append(
        f"  INOR vs EHTR energy       {inor_r.energy_output_j / ehtr_r.energy_output_j:8.4f}x"
        f"   vs 1.0075x"
    )
    lines.append(
        f"  DNOR switches executed    {dnor.switch_count:8d}    vs ~17 switch points"
    )
    return "\n".join(lines)


@pytest.fixture(scope="module")
def n100_instance():
    """A representative N=100 temperature instant for kernel benches."""
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * np.linspace(0.0, 1.0, 100))
    temps = 25.0 + delta_t
    emf, res = thevenin_from_temps(TGM_199_1_4_0_8, temps, 25.0)
    return temps, emf, res


def test_table1_shapes_and_report(benchmark, table1_results):
    results = table1_results
    dnor, inor_r, ehtr_r, base = (
        results["DNOR"],
        results["INOR"],
        results["EHTR"],
        results["Baseline"],
    )

    # Energy ordering and magnitudes.
    assert dnor.energy_output_j > inor_r.energy_output_j > ehtr_r.energy_output_j
    assert ehtr_r.energy_output_j > base.energy_output_j
    assert dnor.energy_output_j / base.energy_output_j > 1.15
    # Switch overhead: DNOR orders of magnitude below the periodic pair.
    assert inor_r.switch_overhead_j / dnor.switch_overhead_j > 10.0
    assert ehtr_r.switch_overhead_j > inor_r.switch_overhead_j * 0.9
    # Runtime: EHTR slow, DNOR amortised at or below INOR.
    assert ehtr_r.average_runtime_ms > 5.0 * inor_r.average_runtime_ms
    assert dnor.average_runtime_ms <= inor_r.average_runtime_ms * 1.3
    # Periodic schemes pay the bill every period (1601 samples, the
    # first application is free commissioning).
    assert inor_r.switch_count == ehtr_r.switch_count == 1600

    emit("table1_800s.txt", render_table1(results))

    benchmark(lambda: comparison_table(list(results.values())))


def test_runtime_inor_n100(benchmark, n100_instance):
    """The table's INOR runtime: one Algorithm 1 invocation at N=100."""
    _, emf, res = n100_instance
    charger = TEGCharger()
    result = benchmark(lambda: inor(emf, res, charger=charger))
    assert result.mpp.power_w > 0.0


def test_runtime_ehtr_n100(benchmark, n100_instance):
    """The table's EHTR runtime: one reconstructed-EHTR invocation."""
    _, emf, res = n100_instance
    result = benchmark.pedantic(
        lambda: ehtr(emf, res), rounds=3, iterations=1, warmup_rounds=1
    )
    assert result.mpp.power_w > 0.0


def test_runtime_dnor_epoch_n100(benchmark, n100_instance):
    """The table's DNOR runtime source: one Algorithm 2 epoch."""
    temps, _, _ = n100_instance
    planner = DNORPlanner(
        module=TGM_199_1_4_0_8,
        charger=TEGCharger(),
        overhead=SwitchingOverheadModel(),
        predictor=MLRPredictor(),
        tp_seconds=1.0,
        sample_dt_s=0.5,
    )
    drift = np.linspace(0.0, 0.5, 120)[:, None]
    history = np.tile(temps, (120, 1)) + drift
    first = planner.plan(history, 25.0, None)

    decision = benchmark(lambda: planner.plan(history, 25.0, first.config))
    assert decision.config is not None
