"""Shard substrate overhead — durable grids must stay close to serial.

The sharded runner (:mod:`repro.sim.shard`) buys horizontal scale-out
with filesystem coordination: per-case queue tickets, atomic-rename
claims, npz/JSON result artifacts and a collation read-back.  None of
that may cost real compute — a shard drained by a single local worker
should run the same grid in nearly the same wall time as the serial
:class:`~repro.sim.engine.ExperimentRunner` (both sides reading the
same warm physics store, so the comparison isolates the queue + artifact
machinery).

Acceptance bar: the substrate overhead — (work + collate) minus the
serial run — must stay under ``0.5 s`` per case.  The measured
overhead is tens of milliseconds; the generous bar keeps slow CI
filesystems from flaking while still catching pathological regressions
(per-case re-solves, non-atomic rewrite storms).

A 2-process-worker drain of the same shard is recorded alongside in
the JSON artifact for the scaling trajectory (no gate: on a small smoke
grid the pool start-up dominates, the interesting regime is many hosts
x many cases).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_SHARD_DURATION_S`` — trace length (default 40).
* ``REPRO_BENCH_SHARD_MODULES`` — comma list of chain lengths forming
  the grid's N axis (default ``49,100``; perfect squares, so the
  Baseline scheme stays valid).
"""

import json
import os
import shutil
import time
from concurrent.futures import ProcessPoolExecutor

from conftest import emit, write_artifact
from repro.sim.engine import ExperimentRunner, grid_cases
from repro.sim.scenario import build_named_scenario
from repro.sim.shard import collate_shard, init_shard, work_shard

DURATION_S = float(os.environ.get("REPRO_BENCH_SHARD_DURATION_S", "40"))
MODULE_AXIS = tuple(
    int(n)
    for n in os.environ.get("REPRO_BENCH_SHARD_MODULES", "49,100").split(",")
)
SCHEMES = ("INOR", "Baseline")

#: Substrate overhead bar, seconds per case.
GATE_OVERHEAD_PER_CASE_S = 0.5


def build_grid():
    scenario = build_named_scenario("porter-ii", duration_s=DURATION_S)
    return grid_cases([scenario], list(SCHEMES), n_modules=list(MODULE_AXIS))


def test_shard_substrate_overhead(tmp_path):
    cases = build_grid()
    shard = tmp_path / "shard"

    t0 = time.perf_counter()
    init_shard(shard, cases)  # manifest + queue + warm physics store
    t_init = time.perf_counter() - t0

    # Serial reference over the same warm artifact store.
    t0 = time.perf_counter()
    serial = ExperimentRunner(
        cases, executor="serial", cache_dir=shard / "cache"
    ).run()
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    completed = work_shard(shard, worker_id="bench-worker")
    t_work = time.perf_counter() - t0
    t0 = time.perf_counter()
    collation = collate_shard(shard)
    t_collate = time.perf_counter() - t0

    assert len(completed) == len(cases)
    assert collation.to_json(deterministic_only=True) == serial.to_json(
        deterministic_only=True
    )

    overhead_per_case = (t_work + t_collate - t_serial) / len(cases)

    # A second shard drained by two worker processes: the scaling
    # record (pool start-up dominates at smoke sizes, hence no gate).
    shard2 = tmp_path / "shard2"
    shutil.copytree(shard / "cache", shard2 / "cache")
    init_shard(shard2, cases, cache_dir=shard2 / "cache")
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(work_shard, str(shard2), f"w{i}") for i in range(2)
        ]
        for future in futures:
            future.result()
    t_two_workers = time.perf_counter() - t0
    assert collate_shard(shard2).to_json(
        deterministic_only=True
    ) == serial.to_json(deterministic_only=True)

    lines = [
        f"grid: porter-ii x {SCHEMES} x N={MODULE_AXIS} "
        f"({len(cases)} cases, {DURATION_S:g} s trace)",
        f"{'serial runner (warm store)':32s} {t_serial * 1e3:9.1f} ms",
        f"{'shard init (incl. warm)':32s} {t_init * 1e3:9.1f} ms",
        f"{'shard work (1 worker)':32s} {t_work * 1e3:9.1f} ms",
        f"{'shard collate':32s} {t_collate * 1e3:9.1f} ms",
        f"{'shard work (2 processes)':32s} {t_two_workers * 1e3:9.1f} ms",
        f"{'substrate overhead / case':32s} "
        f"{overhead_per_case * 1e3:9.1f} ms (gate: < "
        f"{GATE_OVERHEAD_PER_CASE_S * 1e3:.0f} ms)",
    ]
    emit("shard_grid.txt", "\n".join(lines))
    write_artifact(
        "shard_grid.json",
        json.dumps(
            {
                "duration_s": DURATION_S,
                "module_axis": list(MODULE_AXIS),
                "schemes": list(SCHEMES),
                "n_cases": len(cases),
                "serial_s": t_serial,
                "init_s": t_init,
                "work_one_worker_s": t_work,
                "collate_s": t_collate,
                "work_two_processes_s": t_two_workers,
                "overhead_per_case_s": overhead_per_case,
                "gate_overhead_per_case_s": GATE_OVERHEAD_PER_CASE_S,
            },
            indent=2,
        ),
    )

    assert overhead_per_case < GATE_OVERHEAD_PER_CASE_S, (
        f"shard substrate overhead {overhead_per_case * 1e3:.1f} ms/case "
        f"exceeds the {GATE_OVERHEAD_PER_CASE_S * 1e3:.0f} ms bar"
    )
