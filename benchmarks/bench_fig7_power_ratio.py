"""Fig. 7 — output power ratio of the four schemes to P_ideal.

Same 120-second window as Fig. 6, but normalised by the ideal power
(every module at its own MPP).  Regenerates the ratio series, the
per-scheme means, and DNOR's switch markers.

The benchmark measures the P_ideal evaluation kernel.
"""

import numpy as np

from conftest import emit
from repro.teg.array import TEGArray
from repro.teg.datasheet import TGM_199_1_4_0_8

WINDOW = (600.0, 720.0)


def window_mask(time_s: np.ndarray) -> np.ndarray:
    return (time_s >= WINDOW[0]) & (time_s < WINDOW[1])


def render_fig7(results) -> str:
    sample = next(iter(results.values()))
    mask = window_mask(sample.time_s)
    times = sample.time_s[mask]
    stride = 8
    lines = [
        f"Fig. 7 — output power ratio to P_ideal, t = {WINDOW[0]:.0f}..{WINDOW[1]:.0f} s",
        f"{'t (s)':>7s}" + "".join(f"{name:>10s}" for name in results),
    ]
    ratio = {name: r.ratio_to_ideal()[mask] for name, r in results.items()}
    for k in range(0, times.size, stride):
        row = f"{times[k]:7.1f}"
        for name in results:
            row += f"{ratio[name][k]:10.3f}"
        lines.append(row)
    lines.append("")
    for name in results:
        lines.append(
            f"{name:>9s} window mean ratio: {float(ratio[name].mean()):6.3f}"
        )
    dnor = results["DNOR"]
    switches = [t for t in dnor.switch_times_s if WINDOW[0] <= t < WINDOW[1]]
    lines.append("")
    lines.append(
        "DNOR switch points in window: "
        + (", ".join(f"{t:.1f} s" for t in switches) if switches else "none")
    )
    lines.append(
        "Paper comparison: reconfiguration schemes hold a high, flat ratio "
        "near P_ideal; the baseline sits visibly lower and fluctuates with "
        "the temperature distribution."
    )
    return "\n".join(lines)


def test_fig7_power_ratio(benchmark, table1_results):
    results = table1_results
    mask = window_mask(next(iter(results.values())).time_s)
    mean_ratio = {
        name: float(result.ratio_to_ideal()[mask].mean())
        for name, result in results.items()
    }

    # Fig. 7 shape: reconfiguration near ideal, baseline clearly below.
    for scheme in ("DNOR", "INOR", "EHTR"):
        assert mean_ratio[scheme] > 0.85
    assert mean_ratio["Baseline"] < mean_ratio["DNOR"] - 0.10
    # Ratios are proper fractions.
    for result in results.values():
        assert np.all(result.ratio_to_ideal() <= 1.0 + 1e-9)

    emit("fig7_power_ratio.txt", render_fig7(results))

    # Benchmark the P_ideal kernel at one temperature distribution.
    array = TEGArray(TGM_199_1_4_0_8, 100)
    array.set_delta_t(12.0 + 55.0 * np.exp(-2.2 * np.linspace(0, 1, 100)))

    ideal = benchmark(array.ideal_power)
    assert ideal > 0.0
