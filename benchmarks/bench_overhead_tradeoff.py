"""Ablation — prediction horizon and switching-bill sensitivity of DNOR.

Section III-C motivates DNOR with the switching-frequency/output
trade-off.  This bench sweeps (a) the prediction horizon ``t_p`` and
(b) the magnitude of the switching bill, and regenerates the resulting
switch-count / net-energy table.  Expected shape: a larger bill makes
DNOR strictly more reluctant to switch, and DNOR's net energy stays
above the periodic INOR equivalent across the sweep.
"""

import pytest

from conftest import emit
from repro.core.overhead import SwitchingOverheadModel
from repro.sim.scenario import default_scenario

DURATION_S = 200.0


def run_dnor(tp_seconds: float, overhead_scale: float):
    base = SwitchingOverheadModel()
    scenario = default_scenario(
        duration_s=DURATION_S, seed=2018, tp_seconds=tp_seconds
    )
    scenario.overhead = SwitchingOverheadModel(
        sensing_delay_s=base.sensing_delay_s * overhead_scale,
        reconfiguration_delay_s=base.reconfiguration_delay_s * overhead_scale,
        mppt_settle_s=base.mppt_settle_s * overhead_scale,
        per_toggle_energy_j=base.per_toggle_energy_j * overhead_scale,
        compute_staleness_factor=base.compute_staleness_factor,
    )
    simulator = scenario.make_simulator()
    return simulator.run(scenario.make_dnor_policy(), scenario.make_charger())


@pytest.fixture(scope="module")
def sweep_results():
    rows = []
    for tp_seconds in (1.0, 2.0, 4.0):
        result = run_dnor(tp_seconds, overhead_scale=1.0)
        rows.append(("tp", tp_seconds, 1.0, result))
    for scale in (0.3, 3.0, 10.0):
        result = run_dnor(1.0, overhead_scale=scale)
        rows.append(("bill", 1.0, scale, result))
    return rows


def render_sweep(rows) -> str:
    lines = [
        f"DNOR ablation over {DURATION_S:.0f} s — horizon and switching-bill sweep",
        f"{'sweep':>6s} {'t_p (s)':>8s} {'bill x':>7s} {'switches':>9s} "
        f"{'overhead (J)':>13s} {'net energy (J)':>15s} {'runtime (ms)':>13s}",
    ]
    for kind, tp_seconds, scale, result in rows:
        lines.append(
            f"{kind:>6s} {tp_seconds:8.1f} {scale:7.1f} {result.switch_count:9d} "
            f"{result.switch_overhead_j:13.2f} {result.energy_output_j:15.1f} "
            f"{result.average_runtime_ms:13.2f}"
        )
    lines.append("")
    lines.append(
        "Expected shape: switch count falls monotonically as the bill "
        "grows; net energy is robust across t_p (the durable criterion "
        "adapts switching frequency automatically)."
    )
    return "\n".join(lines)


def test_overhead_tradeoff(benchmark, sweep_results):
    rows = sweep_results

    bill_rows = {scale: r for kind, _, scale, r in rows if kind == "bill"}
    base_row = next(r for kind, tp, scale, r in rows if kind == "tp" and tp == 1.0)

    # A heavier bill can only reduce switching.
    assert bill_rows[10.0].switch_count <= bill_rows[3.0].switch_count
    assert bill_rows[3.0].switch_count <= base_row.switch_count
    assert base_row.switch_count <= bill_rows[0.3].switch_count
    # Net energy is stable across horizons (within a few percent).
    tp_rows = [r for kind, _, _, r in rows if kind == "tp"]
    energies = [r.energy_output_j for r in tp_rows]
    assert max(energies) / min(energies) < 1.05

    emit("overhead_tradeoff.txt", render_sweep(rows))

    benchmark(lambda: render_sweep(rows))
