#!/usr/bin/env python
"""Finite thermal coupling: how contact conductances move the MPP.

The paper's radiator model (and most TEG system studies) assumes
*ideal* thermal coupling — module faces sit exactly at the hot-surface
and heatsink temperatures.  Real modules are clamped through finite
contact conductances, and the operating module carries convective
(Peltier) heat, so only a temperature-dependent fraction of the
reservoir difference appears across the couples (Apertet et al.,
arXiv:1108.6164).

This example wraps the calibrated truck radiator in
:class:`repro.thermal.FiniteCouplingBoundary` and compares, over the
same Porter-II drive segment:

* the per-module ``delta_t`` squeeze and its non-uniformity,
* the ideal-MPP power ceiling ``P_ideal`` of both systems,
* the INOR reconfiguration decisions — the coupled system partitions
  the chain differently, which is the paper-level consequence.

Run with::

    python examples/finite_coupling.py [duration_s]
"""

import dataclasses
import sys

import numpy as np

from repro.serve.session import offline_decision_log
from repro.sim.ideal import ideal_power_series
from repro.sim.scenario import build_named_scenario
from repro.thermal import FiniteCouplingBoundary


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    n_modules = 16

    ideal = build_named_scenario(
        "porter-ii", duration_s=duration_s, n_modules=n_modules
    )
    coupled = dataclasses.replace(
        ideal, boundary=FiniteCouplingBoundary(inner=ideal.boundary)
    )
    divider = coupled.boundary

    print(
        f"Porter-II segment, {duration_s:.0f} s, {n_modules} modules\n"
        f"contacts: hot {divider.hot_contact_w_k:.1f} W/K, "
        f"cold {divider.cold_contact_w_k:.1f} W/K, "
        f"module {divider.module_conductance_w_k:.1f} W/K "
        f"(+{divider.peltier_zt_per_k:.0e}/K Peltier term)\n"
    )

    # Per-module squeeze at the segment's hottest sample.
    trace = ideal.trace
    sol_ideal = ideal.boundary.solve_trace(
        trace.coolant_inlet_c,
        trace.coolant_flow_kg_s,
        trace.ambient_c,
        trace.air_flow_kg_s,
        n_modules,
    )
    sol_coupled = divider.solve_trace(
        trace.coolant_inlet_c,
        trace.coolant_flow_kg_s,
        trace.ambient_c,
        trace.air_flow_kg_s,
        n_modules,
    )
    hot = int(np.argmax(trace.coolant_inlet_c))
    retained = sol_coupled.delta_t_k[hot] / sol_ideal.delta_t_k[hot]
    print("delta_t retained across the contacts (hottest sample):")
    print(f"  first module (hottest): {retained[0] * 100.0:5.1f} %")
    print(f"  last module (coolest):  {retained[-1] * 100.0:5.1f} %")
    print(
        f"  non-uniformity (max-min): "
        f"{(retained.max() - retained.min()) * 100.0:4.2f} pp\n"
    )

    # The MPP ceiling: every module at its own maximum power point.
    p_ideal = ideal_power_series(
        trace, ideal.boundary, ideal.module, n_modules
    )
    p_coupled = ideal_power_series(
        trace, divider, ideal.module, n_modules
    )
    ratio = p_coupled.sum() / p_ideal.sum()
    print("ideal-MPP power over the segment:")
    print(f"  ideal coupling:  {p_ideal.sum() * trace.dt_s:8.1f} J")
    print(f"  finite coupling: {p_coupled.sum() * trace.dt_s:8.1f} J")
    print(f"  MPP power shift: {(1.0 - ratio) * 100.0:.1f} % lost\n")

    # The decision-level consequence: INOR partitions differently.
    log_ideal = offline_decision_log(ideal, policy="INOR")
    log_coupled = offline_decision_log(coupled, policy="INOR")
    differing = sum(
        a.to_json_line() != b.to_json_line()
        for a, b in zip(log_ideal, log_coupled)
    )
    print(
        f"INOR reconfiguration decisions differing from the "
        f"ideal-coupling run: {differing}/{len(log_ideal)}"
    )


if __name__ == "__main__":
    main()
