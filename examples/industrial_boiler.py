#!/usr/bin/env python
"""Scaling INOR to boiler-class arrays (the paper's outlook section).

The paper argues that INOR's O(N) complexity makes reconfiguration
viable for "larger scale systems such as industrial boilers and heat
exchangers" where the prior O(N^3) EHTR is hopeless.  This example
builds a 600-module economiser bank on a boiler-like temperature
field, measures both algorithms' runtimes across array sizes, and
shows the recovered power.

Run with::

    python examples/industrial_boiler.py
"""

import time

import numpy as np

from repro import TEGArray, TEGCharger, ehtr, inor
from repro.teg.datasheet import TGM_287_1_0_1_5


def boiler_delta_t(n_modules: int, seed: int = 7) -> np.ndarray:
    """Flue-gas economiser temperature field.

    Counter-flow decay from ~180 K above sink at the gas inlet down to
    ~35 K, with tube-row ripple and fouling-induced patchiness.
    """
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 1.0, n_modules)
    base = 35.0 + 145.0 * np.exp(-1.8 * x)
    row_ripple = 6.0 * np.sin(2.0 * np.pi * x * 12.0)
    fouling = rng.normal(0.0, 3.0, n_modules)
    return np.clip(base + row_ripple + fouling, 5.0, None)


def main() -> None:
    charger = TEGCharger()

    print("Runtime scaling (single reconfiguration, wall clock):")
    print(f"  {'N':>6s} {'INOR (ms)':>12s} {'EHTR (ms)':>12s} {'ratio':>8s}")
    for n_modules in (50, 100, 200, 400, 600):
        array = TEGArray(TGM_287_1_0_1_5, n_modules)
        array.set_delta_t(boiler_delta_t(n_modules))
        emf = array.emf_vector()
        res = array.resistance_vector()

        t0 = time.perf_counter()
        inor(emf, res, charger=charger)
        inor_ms = (time.perf_counter() - t0) * 1.0e3

        if n_modules <= 400:
            t0 = time.perf_counter()
            ehtr(emf, res)
            ehtr_ms = (time.perf_counter() - t0) * 1.0e3
            print(
                f"  {n_modules:6d} {inor_ms:12.2f} {ehtr_ms:12.1f} "
                f"{ehtr_ms / inor_ms:7.0f}x"
            )
        else:
            print(f"  {n_modules:6d} {inor_ms:12.2f} {'(skipped)':>12s} {'':>8s}")

    # Power recovered on the 600-module bank.
    n_modules = 600
    array = TEGArray(TGM_287_1_0_1_5, n_modules)
    array.set_delta_t(boiler_delta_t(n_modules))
    emf = array.emf_vector()
    res = array.resistance_vector()

    result = inor(emf, res, charger=charger)
    ideal = array.ideal_power()
    # A plant electrician would wire a uniform bank; compare against it.
    from repro import grid_configuration

    grid = grid_configuration(n_modules, result.config.n_groups)
    grid_delivered = charger.delivered_at_mpp(array.configured_mpp(grid))

    print(f"\n600-module economiser bank ({array.module.name}):")
    print(f"  P_ideal                 : {ideal:9.1f} W")
    print(
        f"  INOR delivered          : {result.delivered_power_w:9.1f} W "
        f"({result.delivered_power_w / ideal:.1%} of ideal, "
        f"n = {result.config.n_groups} groups)"
    )
    print(
        f"  uniform grid delivered  : {grid_delivered:9.1f} W "
        f"({grid_delivered / ideal:.1%} of ideal)"
    )
    print(
        f"  reconfiguration gain    : "
        f"{result.delivered_power_w / grid_delivered - 1.0:+.1%}"
    )

    # Closed loop: the registry's named boiler scenario (144-module
    # economiser bank under firing-rate swings) through the batch
    # experiment engine.
    from repro.sim.engine import ExperimentRunner, grid_cases
    from repro.sim.scenario import build_named_scenario

    scenario = build_named_scenario("industrial-boiler", duration_s=120.0)
    cases = grid_cases([scenario], ["DNOR", "INOR", "Baseline"])
    collation = ExperimentRunner(cases, executor="serial").run()
    print("\nClosed-loop economiser bank (120 s of load swings):")
    print(collation.tables())


if __name__ == "__main__":
    main()
