#!/usr/bin/env python
"""The 2-D radiator: parallel 1-D paths, per-path reconfiguration.

The paper works in 1-D and notes that a real radiator is "a parallel
connection of multiple 1-dimensional ones".  This example builds that
2-D structure — four coolant paths with realistic flow maldistribution,
25 TEG modules each — reconfigures every path independently with INOR,
and parallels the chains at the charger, quantifying what the 2-D
view adds over four idealised copies of the 1-D result.

Run with::

    python examples/two_dimensional_radiator.py
"""

import numpy as np

from repro import ArrayConfiguration, TEGCharger, TGM_199_1_4_0_8
from repro.analysis import loss_breakdown
from repro.teg.bank import bank_mpp, chain_state, reconfigure_bank
from repro.thermal.multipath import MultiPathRadiator, PathImbalance
from repro.vehicle.trace import default_radiator


def main() -> None:
    n_paths, modules_per_path = 4, 25
    charger = TEGCharger()

    # A fan blowing unevenly and slightly unequal tube resistances.
    imbalance = PathImbalance.random(n_paths, spread=0.22, seed=42)
    radiator = MultiPathRadiator(default_radiator(), n_paths, imbalance)

    matrix = radiator.delta_t_matrix(
        coolant_inlet_c=90.0,
        total_coolant_flow_kg_s=0.24,
        ambient_c=25.0,
        total_air_flow_kg_s=0.85,
        modules_per_path=modules_per_path,
    )
    print(f"2-D radiator: {n_paths} paths x {modules_per_path} modules")
    for path, row in enumerate(matrix):
        print(
            f"  path {path}: dT {row.max():5.1f} -> {row.min():5.1f} K "
            f"(mean {row.mean():5.1f})"
        )

    # Per-path INOR, then the parallel bank combination.
    chains = reconfigure_bank(TGM_199_1_4_0_8, matrix, charger)
    combined = bank_mpp(chains)
    print("\nPer-path INOR configurations:")
    for path, chain in enumerate(chains):
        print(
            f"  path {path}: {chain.config.group_sizes} "
            f"(chain MPP voltage {chain.emf_v / 2:5.2f} V)"
        )
    print(
        f"\nBank MPP: {combined.power_w:6.2f} W at {combined.voltage_v:5.2f} V"
    )

    # Reference 1: every path hard-wired as a 5x5 grid.
    alpha = TGM_199_1_4_0_8.material.seebeck_v_per_k * TGM_199_1_4_0_8.n_couples
    r_module = TGM_199_1_4_0_8.internal_resistance()
    grid = ArrayConfiguration.uniform(modules_per_path, 5)
    grid_chains = [
        chain_state(alpha * row, np.full(modules_per_path, r_module), grid)
        for row in matrix
    ]
    grid_combined = bank_mpp(grid_chains)

    # Reference 2: the loss breakdown of one reconfigured path.
    bd = loss_breakdown(
        alpha * matrix[0],
        np.full(modules_per_path, r_module),
        chains[0].config.starts,
        charger,
    )

    ideal = sum(
        float(np.sum((alpha * row) ** 2 / (4.0 * r_module))) for row in matrix
    )
    print(f"\nIdeal (all modules at MPP):   {ideal:6.2f} W")
    print(
        f"Reconfigured bank:            {combined.power_w:6.2f} W "
        f"({combined.power_w / ideal:.1%})"
    )
    print(
        f"Static 5x5 grids:             {grid_combined.power_w:6.2f} W "
        f"({grid_combined.power_w / ideal:.1%})"
    )
    print(
        f"Reconfiguration gain:         "
        f"{combined.power_w / grid_combined.power_w - 1.0:+.1%}"
    )
    print(
        f"\nPath-0 loss breakdown: parallel {bd.parallel_mismatch_w:.2f} W, "
        f"series {bd.series_mismatch_w:.2f} W, converter "
        f"{bd.conversion_loss_w:.2f} W"
    )


if __name__ == "__main__":
    main()
