#!/usr/bin/env python
"""The paper's headline experiment: an 800-second drive, four schemes.

Reproduces the Table I comparison — DNOR vs INOR vs EHTR vs the static
10 x 10 baseline on a synthetic Porter-II drive — and prints the
switch timeline DNOR produced (the black dots of Figs. 6/7).

Run with::

    python examples/drive_harvest.py [duration_seconds]

The default 240 s keeps the run under a minute (EHTR recomputes a full
O(N^3)-class search every 0.5 s; the full 800 s run lives in
``benchmarks/bench_table1_800s.py``).
"""

import sys
import time

from repro import comparison_table, default_scenario


def main(duration_s: float = 240.0) -> None:
    scenario = default_scenario(duration_s=duration_s, seed=2018)
    simulator = scenario.make_simulator()

    print(f"Trace: {scenario.trace.name} ({scenario.trace.duration_s:.0f} s)")
    print(
        f"Array: {scenario.n_modules} x {scenario.module.name}, "
        f"control period {scenario.control_period_s} s, "
        f"DNOR horizon t_p = {scenario.tp_seconds:.0f} s"
    )
    print()

    results = []
    dnor_policy = None
    for name, policy in scenario.make_policies().items():
        t0 = time.time()
        result = simulator.run(policy, scenario.make_charger())
        print(f"  {name:8s} simulated in {time.time() - t0:5.1f} s wall clock")
        results.append(result)
        if name == "DNOR":
            dnor_policy = policy
    print()
    print(comparison_table(results))
    print()

    dnor, inor, ehtr, baseline = results
    print("Headline ratios (paper's claims in parentheses):")
    print(
        f"  DNOR vs baseline energy : "
        f"{dnor.energy_output_j / baseline.energy_output_j - 1.0:+.1%}  (+30%)"
    )
    if dnor.switch_overhead_j > 0.0:
        print(
            f"  INOR/DNOR overhead      : "
            f"{inor.switch_overhead_j / dnor.switch_overhead_j:6.1f}x  (~100x)"
        )
    print(
        f"  EHTR/INOR runtime       : "
        f"{ehtr.average_runtime_ms / inor.average_runtime_ms:6.1f}x  (~9x)"
    )

    if dnor_policy is not None and dnor.switch_times_s:
        stamps = ", ".join(f"{t:.1f}" for t in dnor.switch_times_s)
        print(f"\nDNOR switched {dnor.switch_count} times, at t = {stamps} s")
    else:
        print("\nDNOR kept its initial configuration for the whole window.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 240.0)
