#!/usr/bin/env python
"""Compare the paper's three temperature predictors (Fig. 5 workflow).

Builds the module-temperature history from a synthetic drive, then
walk-forward-evaluates MLR, BPNN and SVR on 1-second-ahead forecasts
of the whole distribution, reporting the MAPE of Eq. (3) and the
runtime that justifies the paper's choice of MLR.

Run with::

    python examples/prediction_showcase.py
"""

import numpy as np

from repro import default_scenario
from repro.prediction import (
    BPNNPredictor,
    MLRPredictor,
    SVRPredictor,
    walk_forward_evaluation,
)


def module_temperature_history(duration_s: float = 240.0) -> np.ndarray:
    """(T, N) hot-side temperature matrix from the canonical scenario."""
    scenario = default_scenario(duration_s=duration_s, seed=2018)
    trace = scenario.trace
    rows = np.empty((trace.n_samples, scenario.n_modules))
    for i in range(trace.n_samples):
        op = scenario.radiator.operating_point(
            coolant_inlet_c=float(trace.coolant_inlet_c[i]),
            coolant_flow_kg_s=float(trace.coolant_flow_kg_s[i]),
            ambient_c=float(trace.ambient_c[i]),
            air_flow_kg_s=float(trace.air_flow_kg_s[i]),
            n_modules=scenario.n_modules,
        )
        rows[i] = op.surface_temps_c
    return rows


def main() -> None:
    history = module_temperature_history()
    dt_s = 0.5
    horizon_steps = int(round(1.0 / dt_s))  # 1-second-ahead, as in Fig. 5

    print(
        f"History: {history.shape[0]} samples x {history.shape[1]} modules "
        f"({history.shape[0] * dt_s:.0f} s at {dt_s} s)"
    )
    print(f"Forecast horizon: {horizon_steps * dt_s:.0f} s\n")

    predictors = [
        MLRPredictor(),
        BPNNPredictor(epochs=30),
        SVRPredictor(epochs=20),
    ]
    print(
        f"  {'method':>6s} {'mean MAPE %':>12s} {'max MAPE %':>12s} "
        f"{'fit (ms)':>10s} {'forecast (ms)':>14s}"
    )
    results = []
    for predictor in predictors:
        # BPNN/SVR training is orders of magnitude slower than MLR;
        # amortise with a sparser refit, exactly as a real controller
        # would have to.
        refit = 1 if predictor.name == "MLR" else 20
        evaluation = walk_forward_evaluation(
            predictor,
            history,
            horizon_steps=horizon_steps,
            warmup_rows=120,
            stride=2,
            refit_every=refit,
        )
        results.append(evaluation)
        print(
            f"  {evaluation.predictor_name:>6s} "
            f"{evaluation.mean_mape_pct:12.4f} "
            f"{evaluation.max_mape_pct:12.4f} "
            f"{evaluation.mean_fit_seconds * 1e3:10.2f} "
            f"{evaluation.mean_forecast_seconds * 1e3:14.3f}"
        )

    best = min(results, key=lambda e: e.mean_mape_pct)
    print(
        f"\nBest mean MAPE: {best.predictor_name} "
        f"({best.mean_mape_pct:.4f}%) — the paper reaches the same "
        f"verdict and worst-case errors around 0.3%."
    )


if __name__ == "__main__":
    main()
