#!/usr/bin/env python
"""Cold start: reconfiguration during engine warm-up.

The paper's 800-second trace starts with a warm engine.  A cold start
is the harder — and more rewarding — regime: coolant sweeps from
ambient to ~90 degC, the radiator profile morphs continuously, and a
static array is wrong for most of the climb.  This example builds the
registry's named cold-start scenario (thermostat initially closed),
runs DNOR, INOR and the static baseline, and shows how the chosen
group count tracks the warming radiator.

Run with::

    python examples/cold_start.py
"""

from repro import comparison_table
from repro.sim.scenario import build_named_scenario


def main() -> None:
    duration_s = 300.0
    scenario = build_named_scenario("cold-start", duration_s=duration_s)
    trace = scenario.trace

    print(
        f"Cold start: coolant {trace.coolant_inlet_c[0]:.0f} -> "
        f"{trace.coolant_inlet_c[-1]:.0f} degC over {duration_s:.0f} s"
    )

    simulator = scenario.make_simulator()

    results = []
    dnor_result = None
    for name, policy in scenario.make_policies().items():
        if name == "EHTR":
            continue  # same story as INOR at 100x the runtime
        result = simulator.run(policy, scenario.make_charger())
        results.append(result)
        if name == "DNOR":
            dnor_result = result
    print()
    print(comparison_table(results))

    # How the controller adapts: group count along the warm-up.
    assert dnor_result is not None
    groups = dnor_result.n_groups_series
    time_s = dnor_result.time_s
    print("\nDNOR group count while warming (sampled every 30 s):")
    for k in range(0, time_s.size, 60):
        inlet = trace.coolant_inlet_c[k]
        print(
            f"  t = {time_s[k]:5.0f} s   coolant {inlet:5.1f} degC   "
            f"n = {groups[k]:2d} groups"
        )

    cold_half = slice(0, time_s.size // 2)
    warm_half = slice(time_s.size // 2, None)
    print(
        f"\nMean group count: cold half {groups[cold_half].mean():.1f}, "
        f"warm half {groups[warm_half].mean():.1f} "
        "(colder array -> lower module EMF -> more groups in series to "
        "hold the converter-friendly bus voltage)"
    )

    dnor, inor_r, base = results[0], results[1], results[2]
    print(
        f"\nDNOR vs static baseline on a cold start: "
        f"{dnor.energy_output_j / base.energy_output_j - 1.0:+.1%} "
        f"(vs about +30% warm)"
    )
    print(
        f"DNOR switches: {dnor.switch_count} "
        f"(warm-up forces more reconfiguration than cruising)"
    )


if __name__ == "__main__":
    main()
