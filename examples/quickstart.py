#!/usr/bin/env python
"""Quickstart: reconfigure a small TEG array once.

Builds a 20-module chain on a hand-made temperature gradient, runs the
paper's Algorithm 1 (INOR), and compares the result against the ideal
bound, the static grid, and the exact optimum — everything a first
look at the library should show.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    ArrayConfiguration,
    TEGArray,
    TEGCharger,
    TGM_199_1_4_0_8,
    grid_configuration,
    inor,
)
from repro.core.exhaustive import best_partition_parametric_dp


def main() -> None:
    n_modules = 20

    # A radiator-like exponential gradient: hot coolant enters at one
    # end, modules cool towards the exit (dT in kelvin).
    positions = np.linspace(0.0, 1.0, n_modules)
    delta_t = 12.0 + 55.0 * np.exp(-2.2 * positions)

    array = TEGArray(TGM_199_1_4_0_8, n_modules)
    array.set_delta_t(delta_t)
    emf = array.emf_vector()
    resistance = array.resistance_vector()

    print(f"Module: {array.module.name} x {n_modules}")
    print(f"dT range: {delta_t.min():.1f} .. {delta_t.max():.1f} K")
    print(f"P_ideal (every module at its own MPP): {array.ideal_power():.2f} W")
    print()

    # The paper's Algorithm 1, with the converter-aware group range.
    charger = TEGCharger()
    result = inor(emf, resistance, charger=charger)
    print("INOR (Algorithm 1):")
    print(f"  configuration: {result.config}")
    print(f"  paper form (g_1..g_n): {result.config.paper_form()}")
    print(f"  scanned n range: {result.n_range}")
    print(
        f"  array MPP: {result.mpp.power_w:.2f} W at "
        f"{result.mpp.voltage_v:.1f} V / {result.mpp.current_a:.2f} A"
    )
    print(f"  delivered after converter: {result.delivered_power_w:.2f} W")
    print()

    # References: static grid, exact optimum.
    grid = grid_configuration(n_modules, 4)
    grid_mpp = array.configured_mpp(grid)
    exact = best_partition_parametric_dp(emf, resistance)
    all_series = array.configured_mpp(ArrayConfiguration.all_series(n_modules))

    ideal = array.ideal_power()
    print("Comparison (electrical MPP, fraction of P_ideal):")
    for label, power in (
        ("INOR", result.mpp.power_w),
        ("exact optimum", exact.mpp.power_w),
        ("static 4x5 grid", grid_mpp.power_w),
        ("all-series chain", all_series.power_w),
    ):
        print(f"  {label:18s} {power:7.2f} W   {power / ideal:6.1%}")

    gap = 1.0 - result.mpp.power_w / exact.mpp.power_w
    print(f"\nINOR is within {gap:.2%} of the exact optimum on this gradient.")


if __name__ == "__main__":
    main()
