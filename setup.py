"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` / ``python setup.py develop`` keep working on
offline machines whose environments lack the ``wheel`` package needed
for PEP 660 editable builds.
"""

from setuptools import setup

setup()
